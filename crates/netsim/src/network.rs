//! The fluid connection model: global max-min fair sharing over the
//! topology's link graph.
//!
//! Every ordered pair of peers that exchanges data owns a [`Connection`]: a
//! FIFO of queued blocks served at the connection's current rate. A
//! connection with a block in flight is an active **flow** crossing three
//! directed links — the sender's uplink, a core link (possibly shared with
//! other pairs), and the receiver's downlink (see
//! [`crate::topology::Topology::links_on_path`]). Rates are assigned by
//! **progressive filling**: one common water level rises across all flows of
//! a component; a flow freezes when a link on its path saturates or when it
//! hits its own TCP ceiling (Mathis loss limit and slow start, see
//! [`crate::tcp`]). The result is the unique global max-min fair allocation,
//! the fluid equivalent of many long-lived TCP flows sharing a network —
//! `docs/NETWORK_MODEL.md` develops the model in full, with a worked example.
//!
//! ## Incremental repricing
//!
//! Rates must be re-assigned whenever the flow set or the constraints change:
//! a flow starts or stops, a block completes (the slow-start ceiling moved),
//! a scenario rewrites link capacities, or cross traffic changes a link's
//! occupancy. A change can only affect flows connected to it through shared
//! links, so the model re-solves exactly the **connected component** of the
//! flow–link graph containing the changed links and leaves every other
//! component untouched; a from-scratch solve decomposes per component, so the
//! incremental result is identical (the `fairness_oracle` property test
//! enforces this). Component discovery additionally **prunes unsaturable
//! links**: a link whose registered flows could not fill it even if every one
//! ran flat-out at its own TCP ceiling can never constrain anyone, so the
//! search does not cross it (margin-guarded by `PRUNE_MARGIN`). Only flows
//! whose rate actually changed get a new completion estimate.
//!
//! The solver itself is ordered progressive filling: a min-heap over flow
//! ceilings and a lazily-invalidated min-heap over link saturation levels
//! drive the water level from one freezing point to the next, so a solve
//! costs O((F + L) log(F + L)) instead of a full rescan of every flow and
//! link per round.
//!
//! Each active connection has exactly **one** live completion event in the
//! driver's queue; the [`Network`] returns [`ConnUpdate`] records telling the
//! caller (the [`crate::runner::Runner`]) to move that event
//! ([`ConnUpdate::Schedule`]) or drop it ([`ConnUpdate::Cancel`]) through the
//! cancellable [`desim::EventQueue`].
//!
//! The connection also records the two sender-side measurements Bullet′'s
//! flow controller consumes (§3.3.3): `in_front`, the number of blocks queued
//! ahead when a block was enqueued, and `wasted`, the idle gap (negative) or
//! queue-wait time (positive) associated with the block.
//!
//! ## Example
//!
//! Two flows from one sender share its access uplink; the fluid model
//! halves their rates and re-prices both completion events:
//!
//! ```
//! use desim::SimTime;
//! use dissem_codec::BlockId;
//! use netsim::{topology, Network, NodeId};
//!
//! let mut net = Network::new(topology::constrained_access(3));
//! let t0 = SimTime::ZERO;
//! net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 100_000);
//! let alone = net.current_rate(NodeId(0), NodeId(1)).unwrap();
//! let updates = net.queue_block(t0, NodeId(0), NodeId(2), BlockId(1), 100_000);
//! assert_eq!(updates.len(), 2, "both flows re-priced");
//! let shared = net.current_rate(NodeId(0), NodeId(1)).unwrap();
//! assert!(shared < alone);
//! ```

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap, VecDeque};

use desim::{SimDuration, SimTime};
use dissem_codec::BlockId;
use rand::Rng;

use crate::topology::{LinkId, NodeId, Topology};
use crate::units::BytesPerSec;

/// A connection never stalls completely: TCP retransmits eventually, so the
/// fluid model floors every rate at one byte per second.
const MIN_RATE: BytesPerSec = 1.0;

/// Relative rate-change threshold below which a flow keeps its old rate and
/// its live completion event: re-scheduling on every last-ulp wiggle of the
/// solver would flood the event queue without changing any outcome.
const RATE_EPSILON: f64 = 1e-9;

/// Sentinel for "no link in this path slot / link not part of the component".
const NO_LINK: u32 = u32::MAX;

/// Relative slack below which component discovery refuses to cross a link: if
/// the cached TCP ceilings of every flow registered on the link sum to less
/// than `usable * (1 - PRUNE_MARGIN)`, the link cannot saturate no matter how
/// the solve goes, so it exerts no constraint and cannot couple components.
/// The margin is deliberately generous (the ceiling sum is maintained
/// incrementally and carries float drift; see
/// [`Network::rebuild_link_tables`]).
const PRUNE_MARGIN: f64 = 1e-3;

/// Relative component of the link-saturation tolerance in the solver.
const SAT_EPS_REL: f64 = 1e-12;

/// Absolute component of the link-saturation tolerance. Without it the
/// tolerance `level * (1 + SAT_EPS_REL)` degenerates to an exact-equality
/// test at `level == 0` (e.g. a link fully occupied by cross traffic), and a
/// link sitting a few ulps above zero would spin through extra solver rounds
/// handing out denormal-sized rates.
const SAT_EPS_ABS: f64 = 1e-12;

/// Information handed to the receiving protocol when a block arrives.
#[derive(Debug, Clone, Copy)]
pub struct BlockReceipt {
    /// The delivered block.
    pub block: BlockId,
    /// Size of the delivered block in bytes.
    pub bytes: u64,
    /// Number of blocks that were queued ahead of this one (including the one
    /// in the "socket buffer") when it was enqueued at the sender.
    pub in_front: u32,
    /// Sender-side wasted time in seconds: negative is idle time the sender
    /// spent with an empty queue immediately before this block was enqueued,
    /// positive is the time this block waited in the queue before service.
    pub wasted: f64,
    /// When the sending protocol enqueued the block.
    pub queued_at: SimTime,
    /// When the block arrived at the receiver.
    pub delivered_at: SimTime,
}

/// A completion record produced by the sender side of a connection; the
/// runner turns it into a delivery event after the propagation delay.
#[derive(Debug, Clone, Copy)]
pub struct CompletedBlock {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The block that finished serialising at the sender.
    pub block: BlockId,
    /// Block size in bytes.
    pub bytes: u64,
    /// See [`BlockReceipt::in_front`].
    pub in_front: u32,
    /// See [`BlockReceipt::wasted`].
    pub wasted: f64,
    /// When the block was enqueued.
    pub queued_at: SimTime,
}

/// Instruction for the driver to keep a connection's single completion event
/// in sync with the fluid model. Carries the connection's dense flow id so
/// the driver can index its event table directly; `from`/`to` ride along for
/// logging and assertions, never for lookups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConnUpdate {
    /// The in-flight block on `from → to` now finishes at `at`: move the
    /// connection's completion event there (or create it if none is live).
    Schedule {
        /// Dense flow id of the connection in the network's flow table.
        fid: u32,
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Absolute time at which the in-flight block finishes serialising.
        at: SimTime,
    },
    /// The `from → to` connection no longer has a block in flight: cancel its
    /// completion event.
    Cancel {
        /// Dense flow id of the connection.
        fid: u32,
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
    },
}

/// A block waiting in a connection's queue.
#[derive(Debug, Clone, Copy)]
struct QueuedBlock {
    block: BlockId,
    bytes: u64,
    queued_at: SimTime,
    in_front: u32,
    idle_gap: f64,
}

/// The block currently being serialised onto the wire.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    block: BlockId,
    bytes: u64,
    bytes_left: f64,
    queued_at: SimTime,
    started_at: SimTime,
    in_front: u32,
    idle_gap: f64,
}

/// Per-connection queue state. The solver-facing per-flow state (current
/// rate, cached TCP ceiling, registered path) lives in the [`Network`]'s
/// dense flow table, indexed by the same flow id, so the hot solve/apply
/// loops walk flat arrays instead of chasing a `HashMap` per event.
#[derive(Debug, Clone)]
pub struct Connection {
    queue: VecDeque<QueuedBlock>,
    inflight: Option<InFlight>,
    /// Last instant at which the in-flight block's `bytes_left` was brought
    /// up to date.
    last_progress: SimTime,
    /// Total bytes whose transmission has completed (drives slow start).
    bytes_acked: u64,
    /// When the connection last became idle.
    idle_since: SimTime,
}

impl Connection {
    fn new(now: SimTime) -> Self {
        Connection {
            queue: VecDeque::new(),
            inflight: None,
            last_progress: now,
            bytes_acked: 0,
            idle_since: now,
        }
    }

    /// True when a block is being serialised.
    pub fn is_active(&self) -> bool {
        self.inflight.is_some()
    }

    /// Number of blocks queued or in flight on this connection.
    pub fn pending_blocks(&self) -> usize {
        self.queue.len() + usize::from(self.inflight.is_some())
    }

    /// Bytes queued or in flight on this connection.
    pub fn pending_bytes(&self) -> u64 {
        let inflight = self
            .inflight
            .map(|f| f.bytes_left.ceil() as u64)
            .unwrap_or(0);
        inflight + self.queue.iter().map(|q| q.bytes).sum::<u64>()
    }

    /// Total bytes delivered on this connection so far.
    pub fn bytes_acked(&self) -> u64 {
        self.bytes_acked
    }
}

/// Per-node traffic accounting maintained by the emulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeTraffic {
    /// Bytes of control messages sent.
    pub control_bytes_out: u64,
    /// Bytes of control messages received.
    pub control_bytes_in: u64,
    /// Number of control messages sent.
    pub control_msgs_out: u64,
    /// Data bytes handed to the receiving protocol.
    pub data_bytes_in: u64,
    /// Data bytes whose serialisation completed at this sender.
    pub data_bytes_out: u64,
    /// Data blocks delivered to this node.
    pub blocks_in: u64,
    /// Data blocks sent by this node.
    pub blocks_out: u64,
}

/// Packs an ordered node pair into one sortable key; ascending key order is
/// exactly the lexicographic `(from, to)` order the per-link membership lists
/// are kept in, which fixes the flow-discovery order of every solve.
fn pair_key(from: NodeId, to: NodeId) -> u64 {
    (u64::from(from.0) << 32) | u64::from(to.0)
}

/// Inserts `(key, fid)` into a sorted membership list; returns false (and
/// leaves the list unchanged) if the key is already present.
fn link_insert(list: &mut Vec<(u64, u32)>, key: u64, fid: u32) -> bool {
    match list.binary_search_by_key(&key, |&(k, _)| k) {
        Ok(_) => false,
        Err(pos) => {
            list.insert(pos, (key, fid));
            true
        }
    }
}

/// Removes `key` from a sorted membership list; returns whether it was there.
fn link_remove(list: &mut Vec<(u64, u32)>, key: u64) -> bool {
    match list.binary_search_by_key(&key, |&(k, _)| k) {
        Ok(pos) => {
            list.remove(pos);
            true
        }
        Err(_) => false,
    }
}

/// Monotonic counters describing the fluid solver's work: how often each
/// O(1) certificate-preserving fast path fired versus a full component
/// re-solve, and how big the solved components got. Pure virtual-time
/// accounting (no wall-clock input), so identical runs report identical
/// stats; the runner diffs successive values to attribute solver activity
/// to individual events in trace records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Admission fast-path hits (`mark_active` without a solve).
    pub fast_admit: u64,
    /// Removal fast-path hits (`mark_idle` without a solve).
    pub fast_remove: u64,
    /// Non-binding ceiling-growth fast-path hits (block completion without
    /// a solve).
    pub fast_growth: u64,
    /// Full component re-solves (progressive-filling runs).
    pub full_solves: u64,
    /// Cumulative flows across all full solves.
    pub solved_flows: u64,
    /// Cumulative links across all full solves.
    pub solved_links: u64,
    /// Largest single component solved, in flows.
    pub max_comp_flows: u64,
    /// Largest single component solved, in links.
    pub max_comp_links: u64,
    /// High-water mark of the ordered-filling heaps (entries, both heaps).
    pub max_heap: u64,
}

/// The emulated network: topology + live connection state + traffic counters
/// + the max-min fair rate assignment over the link graph.
///
/// Flow state is a dense structure-of-arrays table indexed by flow id (a
/// `u32` handed out the first time an ordered pair exchanges data and stable
/// thereafter); the `(NodeId, NodeId)`-keyed map is consulted once at each
/// public entry point and never inside the solver.
#[derive(Debug, Clone)]
pub struct Network {
    topo: Topology,
    /// Ordered pair → dense flow id (API boundary only).
    flow_ids: HashMap<(NodeId, NodeId), u32>,
    /// Flow id → ordered pair.
    flow_pair: Vec<(NodeId, NodeId)>,
    /// Flow id → queue/progress state.
    conns: Vec<Connection>,
    /// Flow id → current service rate in bytes/second (meaningful while the
    /// flow is registered; keeps its last value across idle periods).
    flow_rate: Vec<f64>,
    /// Flow id → cached TCP ceiling. Invariant: equal to a fresh
    /// [`Network::flow_cap`] for every **registered** flow — refreshed on
    /// activation, on block completion (slow start grew), and by
    /// [`Network::reprice_paths`] / [`Network::reprice_all`] after topology
    /// mutations. The solver reads this cache instead of recomputing.
    flow_ceiling: Vec<f64>,
    /// Flow id → the links the flow registered on when it became active
    /// (meaningful while `flow_registered`). Deregistration and the solver
    /// use *these*, never a fresh `links_on_path` lookup, so a topology remap
    /// while the flow is in flight cannot desynchronise the per-link tables:
    /// the flow keeps its registered path until it next goes idle.
    flow_path: Vec<[LinkId; 3]>,
    /// Flow id → currently registered on its path links?
    flow_registered: Vec<bool>,
    /// Flow id → visit stamp for component discovery (versioned by
    /// `mark_stamp`, never cleared).
    flow_mark: Vec<u64>,
    /// Flow ids released by [`Network::release_flows_for`], available for
    /// reuse: without recycling, an open-system run that keeps admitting and
    /// retiring swarms would grow the dense flow table monotonically.
    free_fids: Vec<u32>,
    /// Flows (connections with a block in flight) crossing each link, indexed
    /// by [`LinkId`]: `(pair_key, flow_id)` sorted by key, so every solve
    /// discovers flows in the same deterministic order.
    link_flows: Vec<Vec<(u64, u32)>>,
    /// Sum of the current rates of the flows registered on each link —
    /// maintained incrementally so the admission/removal fast paths can test
    /// saturation without a solve.
    link_usage: Vec<f64>,
    /// Sum of the cached TCP ceilings of the flows registered on each link —
    /// the dirty-link test: a link whose ceiling sum cannot reach its usable
    /// capacity can never saturate and is pruned from component discovery.
    link_cap_sum: Vec<f64>,
    /// Background (cross-traffic) occupancy per link, in bytes/second.
    cross: Vec<BytesPerSec>,
    traffic: Vec<NodeTraffic>,
    /// Scratch per-link visit marks for component discovery, versioned by
    /// `mark_stamp` so the vector never needs clearing.
    link_mark: Vec<u64>,
    /// Component-local index of each marked link (valid while its mark
    /// carries the current stamp); [`NO_LINK`] marks a pruned link.
    link_local: Vec<u32>,
    mark_stamp: u64,
    /// Reusable solver buffers (cleared per solve, capacity kept), so
    /// steady-state repricing does not allocate.
    scratch: SolverScratch,
    /// Fast-path vs full-solve accounting (see [`SolverStats`]).
    solver_stats: SolverStats,
}

/// The solver's working buffers, reused across solves.
#[derive(Debug, Clone, Default)]
struct SolverScratch {
    /// Links of the component under solve, in discovery order (= local ids).
    comp_links: Vec<LinkId>,
    /// Flow ids of the component, in discovery order.
    flows: Vec<u32>,
    /// Component-local link ids of each flow's path ([`NO_LINK`] = pruned).
    flow_links: Vec<[u32; 3]>,
    /// Each flow's own TCP ceiling.
    caps: Vec<f64>,
    /// Per-local-link solver state.
    links: Vec<LinkState>,
    /// Per-local-link flow adjacency (indices into `flows`).
    link_members: Vec<Vec<u32>>,
    /// The ordered-filling heaps.
    heaps: SolverHeaps,
    /// Solver outputs.
    rates: Vec<f64>,
    frozen: Vec<bool>,
}

impl Network {
    /// Wraps a topology with empty connection state.
    pub fn new(topo: Topology) -> Self {
        let n = topo.len();
        let links = topo.num_links();
        Network {
            topo,
            flow_ids: HashMap::new(),
            flow_pair: Vec::new(),
            conns: Vec::new(),
            flow_rate: Vec::new(),
            flow_ceiling: Vec::new(),
            flow_path: Vec::new(),
            flow_registered: Vec::new(),
            flow_mark: Vec::new(),
            free_fids: Vec::new(),
            link_flows: vec![Vec::new(); links],
            link_usage: vec![0.0; links],
            link_cap_sum: vec![0.0; links],
            cross: vec![0.0; links],
            traffic: vec![NodeTraffic::default(); n],
            link_mark: vec![0; links],
            link_local: vec![0; links],
            mark_stamp: 0,
            scratch: SolverScratch::default(),
            solver_stats: SolverStats::default(),
        }
    }

    /// Cumulative fluid-solver activity counters.
    pub fn solver_stats(&self) -> SolverStats {
        self.solver_stats
    }

    /// The underlying topology (read-only).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Mutable topology access, used by dynamic-bandwidth scenarios. Callers
    /// must follow up with [`Network::reprice_paths`] for every affected
    /// ordered pair (or [`Network::reprice_all`] after wholesale rewrites):
    /// besides re-solving the allocation, those calls refresh the cached TCP
    /// ceilings that delay/loss edits invalidate.
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// Number of emulated hosts.
    pub fn len(&self) -> usize {
        self.topo.len()
    }

    /// Returns true if the network has no hosts (never for valid topologies).
    pub fn is_empty(&self) -> bool {
        self.topo.is_empty()
    }

    /// Traffic counters for `node`.
    pub fn traffic(&self, node: NodeId) -> &NodeTraffic {
        &self.traffic[node.index()]
    }

    /// Dense flow id of `from → to`, if the pair ever exchanged data.
    fn flow_id(&self, from: NodeId, to: NodeId) -> Option<u32> {
        self.flow_ids.get(&(from, to)).copied()
    }

    /// Flow id of `from → to`, creating a fresh table row if needed. Rows
    /// released by [`Network::release_flows_for`] are recycled before the
    /// table grows, so the dense arrays stay bounded by the peak number of
    /// concurrently live pairs rather than by run length.
    fn flow_id_or_create(&mut self, now: SimTime, from: NodeId, to: NodeId) -> u32 {
        if let Some(f) = self.flow_id(from, to) {
            return f;
        }
        if let Some(f) = self.free_fids.pop() {
            let i = f as usize;
            debug_assert!(!self.flow_registered[i], "recycled a registered flow");
            self.flow_ids.insert((from, to), f);
            self.flow_pair[i] = (from, to);
            self.conns[i] = Connection::new(now);
            self.flow_rate[i] = MIN_RATE;
            self.flow_ceiling[i] = f64::INFINITY;
            self.flow_path[i] = [LinkId(0); 3];
            return f;
        }
        let f = self.conns.len() as u32;
        self.flow_ids.insert((from, to), f);
        self.flow_pair.push((from, to));
        self.conns.push(Connection::new(now));
        self.flow_rate.push(MIN_RATE);
        self.flow_ceiling.push(f64::INFINITY);
        self.flow_path.push([LinkId(0); 3]);
        self.flow_registered.push(false);
        self.flow_mark.push(0);
        f
    }

    /// Connection state for `from → to`, if one exists.
    pub fn connection(&self, from: NodeId, to: NodeId) -> Option<&Connection> {
        self.flow_id(from, to).map(|f| &self.conns[f as usize])
    }

    /// Current service rate estimate of `from → to` in bytes/second, if the
    /// pair ever exchanged data (keeps its last value across idle periods).
    pub fn current_rate(&self, from: NodeId, to: NodeId) -> Option<BytesPerSec> {
        self.flow_id(from, to).map(|f| self.flow_rate[f as usize])
    }

    /// Number of blocks queued + in flight from `from` to `to`.
    pub fn pending_blocks(&self, from: NodeId, to: NodeId) -> usize {
        self.connection(from, to)
            .map_or(0, Connection::pending_blocks)
    }

    /// Background cross-traffic occupancy of `link`, in bytes/second.
    pub fn cross_traffic(&self, link: LinkId) -> BytesPerSec {
        self.cross[link.index()]
    }

    /// Sets the background cross-traffic occupancy of the core link carrying
    /// `via.0 → via.1` to `rate` bytes/second and re-prices the flows the
    /// change can affect. Cross traffic is unresponsive (CBR-like): it takes
    /// `rate` off the link's usable capacity regardless of contention.
    pub fn set_cross_traffic(
        &mut self,
        now: SimTime,
        via: (NodeId, NodeId),
        rate: BytesPerSec,
    ) -> Vec<ConnUpdate> {
        self.sync_link_tables();
        let link = self.topo.core_link(via.0, via.1);
        self.cross[link.index()] = rate.max(0.0);
        self.resolve(now, &[link], None)
    }

    /// Keeps the per-link tables sized to the topology, which can gain links
    /// through [`Topology::share_core`] after the network was built. Flows
    /// already in flight across a remap keep their *registered* links until
    /// they next go idle (see [`Network::flow_path`]), so a late remap
    /// changes routing for future activations without corrupting state.
    fn sync_link_tables(&mut self) {
        let links = self.topo.num_links();
        if self.link_flows.len() < links {
            self.link_flows.resize_with(links, Vec::new);
            self.link_usage.resize(links, 0.0);
            self.link_cap_sum.resize(links, 0.0);
            self.cross.resize(links, 0.0);
            self.link_mark.resize(links, 0);
            self.link_local.resize(links, 0);
        }
    }

    /// Rebuilds `link_usage` and `link_cap_sum` exactly from the registered
    /// flows, resetting the float drift the incremental `+= delta` updates
    /// accumulate over long runs. Cheap (one pass over the flow table); the
    /// runner invokes it periodically (see
    /// [`crate::runner::Runner::set_table_rebuild_interval`]).
    pub fn rebuild_link_tables(&mut self) {
        for u in &mut self.link_usage {
            *u = 0.0;
        }
        for c in &mut self.link_cap_sum {
            *c = 0.0;
        }
        for f in 0..self.conns.len() {
            if !self.flow_registered[f] {
                continue;
            }
            for l in self.flow_path[f] {
                if self.unconstrained(l) {
                    continue;
                }
                self.link_usage[l.index()] += self.flow_rate[f];
                self.link_cap_sum[l.index()] += self.flow_ceiling[f];
            }
        }
    }

    /// Debug-build consistency check: the incrementally maintained per-link
    /// usage and ceiling sums must agree with a from-scratch recomputation to
    /// within float-drift tolerance. Exercised on every
    /// [`Network::reprice_all`] (which the `fairness_oracle` property test
    /// calls after every random operation).
    #[cfg(debug_assertions)]
    fn debug_check_link_tables(&self) {
        let links = self.link_flows.len();
        let mut usage = vec![0.0f64; links];
        let mut cap_sum = vec![0.0f64; links];
        for f in 0..self.conns.len() {
            if !self.flow_registered[f] {
                continue;
            }
            for l in self.flow_path[f] {
                if self.unconstrained(l) {
                    continue;
                }
                usage[l.index()] += self.flow_rate[f];
                cap_sum[l.index()] += self.flow_ceiling[f];
            }
        }
        for l in 0..links {
            let tol = 1e-6 * usage[l].abs().max(1.0);
            assert!(
                (usage[l] - self.link_usage[l]).abs() <= tol,
                "link {l} usage drift: incremental {} vs exact {}",
                self.link_usage[l],
                usage[l],
            );
            let tol = 1e-6 * cap_sum[l].abs().max(1.0);
            assert!(
                (cap_sum[l] - self.link_cap_sum[l]).abs() <= tol,
                "link {l} cap-sum drift: incremental {} vs exact {}",
                self.link_cap_sum[l],
                cap_sum[l],
            );
        }
    }

    /// Delivery delay for a `bytes`-sized control message from `from` to
    /// `to`, including an occasional loss-induced retransmission penalty.
    /// Control traffic is tiny next to the data flows, so it is priced off
    /// raw link capacities rather than fed through the fluid solver.
    pub fn control_delay<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        from: NodeId,
        to: NodeId,
        bytes: usize,
    ) -> SimDuration {
        let prop = self.topo.one_way_delay(from, to);
        let path = self.topo.path(from, to);
        let access = self
            .topo
            .node(from)
            .up
            .min(self.topo.node(to).down)
            .max(1.0);
        let serialisation = SimDuration::from_secs_f64(bytes as f64 / access.min(path.bw.max(1.0)));
        // A lost control packet waits for a TCP retransmission: roughly one
        // RTT plus a minimum RTO floor.
        let mut penalty = SimDuration::ZERO;
        if path.loss > 0.0 && rng.gen_bool(path.loss.min(0.5)) {
            penalty = self.topo.rtt(from, to) + SimDuration::from_millis(200);
        }
        self.traffic[from.index()].control_bytes_out += bytes as u64;
        self.traffic[from.index()].control_msgs_out += 1;
        self.traffic[to.index()].control_bytes_in += bytes as u64;
        prop + serialisation + penalty
    }

    /// One-way propagation delay used for data-block delivery after the
    /// block finishes serialising at the sender.
    pub fn data_delivery_delay(&self, from: NodeId, to: NodeId) -> SimDuration {
        self.topo.one_way_delay(from, to)
    }

    /// Enqueues a block on the `from → to` connection, creating the
    /// connection if needed. Returns the completion-event updates caused by
    /// rate changes.
    pub fn queue_block(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        block: BlockId,
        bytes: u64,
    ) -> Vec<ConnUpdate> {
        assert!(from != to, "a node cannot stream blocks to itself");
        let fid = self.flow_id_or_create(now, from, to);
        let conn = &mut self.conns[fid as usize];
        let in_front = conn.pending_blocks() as u32;
        let idle_gap = if conn.is_active() || !conn.queue.is_empty() {
            0.0
        } else {
            (now - conn.idle_since).as_secs_f64()
        };
        conn.queue.push_back(QueuedBlock {
            block,
            bytes,
            queued_at: now,
            in_front,
            idle_gap,
        });
        if conn.is_active() {
            Vec::new()
        } else {
            self.start_next(now, fid);
            self.mark_active(now, fid)
        }
    }

    /// Pops the next queued block into the in-flight slot. The caller is
    /// responsible for activation bookkeeping and rescheduling.
    fn start_next(&mut self, now: SimTime, fid: u32) {
        let conn = &mut self.conns[fid as usize];
        debug_assert!(conn.inflight.is_none());
        if let Some(q) = conn.queue.pop_front() {
            conn.inflight = Some(InFlight {
                block: q.block,
                bytes: q.bytes,
                bytes_left: q.bytes as f64,
                queued_at: q.queued_at,
                started_at: now,
                in_front: q.in_front,
                idle_gap: q.idle_gap,
            });
            conn.last_progress = now;
        }
    }

    /// Handles the completion event for connection `from → to`. With the
    /// cancellable queue there is at most one live completion event per
    /// connection, so a firing event always refers to the current in-flight
    /// block; `None` is only returned defensively if the connection does not
    /// exist or has nothing in flight (which indicates a driver bug).
    pub fn on_block_done(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
    ) -> Option<(CompletedBlock, Vec<ConnUpdate>)> {
        let fid = self.flow_id(from, to)?;
        self.on_block_done_by_id(now, fid)
    }

    /// [`Network::on_block_done`] addressed by dense flow id — the driver's
    /// hot path, since its completion events already carry the id and the
    /// tuple-key hash lookup can be skipped entirely.
    pub fn on_block_done_by_id(
        &mut self,
        now: SimTime,
        fid: u32,
    ) -> Option<(CompletedBlock, Vec<ConnUpdate>)> {
        let f = fid as usize;
        if f >= self.conns.len() {
            return None;
        }
        let (from, to) = self.flow_pair[f];
        let conn = &mut self.conns[f];
        let fl = conn.inflight.take()?;
        conn.bytes_acked += fl.bytes;
        conn.last_progress = now;
        let wasted = if fl.idle_gap > 0.0 {
            -fl.idle_gap
        } else {
            (fl.started_at - fl.queued_at).as_secs_f64()
        };
        let completed = CompletedBlock {
            from,
            to,
            block: fl.block,
            bytes: fl.bytes,
            in_front: fl.in_front,
            wasted,
            queued_at: fl.queued_at,
        };
        self.traffic[from.index()].data_bytes_out += fl.bytes;
        self.traffic[from.index()].blocks_out += 1;

        let has_more = !self.conns[f].queue.is_empty();
        let updates = if has_more {
            // The connection stays active; the only solver input that moved
            // is this flow's own ceiling (slow start grew). If the ceiling
            // value is unchanged (a mature, Mathis-limited flow) or was not
            // binding anyway (link-limited flow, monotone ceiling growth),
            // the global allocation is untouched — schedule the fresh
            // in-flight block at the current rate without a solve.
            self.start_next(now, fid);
            let new_cap = self.flow_cap(from, to, self.conns[f].bytes_acked);
            let old_cap = self.flow_ceiling[f];
            if new_cap != old_cap {
                self.flow_ceiling[f] = new_cap;
                for l in self.flow_path[f] {
                    if self.unconstrained(l) {
                        continue;
                    }
                    let c = &mut self.link_cap_sum[l.index()];
                    *c = (*c + new_cap - old_cap).max(0.0);
                }
            }
            let rate = self.flow_rate[f];
            let cap_unchanged = new_cap == old_cap;
            let cap_not_binding = new_cap >= old_cap && rate < old_cap * (1.0 - RATE_EPSILON);
            if cap_unchanged || cap_not_binding {
                self.solver_stats.fast_growth += 1;
                let conn = &self.conns[f];
                let fl = conn.inflight.as_ref().expect("just started");
                let finish = now + SimDuration::from_secs_f64(fl.bytes_left / rate);
                vec![ConnUpdate::Schedule {
                    fid,
                    from,
                    to,
                    at: finish,
                }]
            } else {
                // The ceiling moved while binding — re-solve the component,
                // which can ripple to every flow sharing a link with this one.
                let links = self.topo.links_on_path(from, to);
                self.resolve(now, &links, Some(fid))
            }
        } else {
            self.conns[f].idle_since = now;
            // The fired event was the connection's only live one, so there is
            // nothing to cancel; the freed capacity re-prices the neighbours.
            self.mark_idle(now, fid)
        };
        Some((completed, updates))
    }

    /// Records the receiver-side arrival of a block (traffic accounting).
    pub fn on_block_delivered(&mut self, to: NodeId, bytes: u64) {
        self.traffic[to.index()].data_bytes_in += bytes;
        self.traffic[to.index()].blocks_in += 1;
    }

    /// Closes the `from → to` connection, dropping queued and in-flight
    /// blocks. Returns a cancellation for this connection's completion event
    /// (if one was live) plus updates for the flows whose shares changed.
    pub fn close_connection(&mut self, now: SimTime, from: NodeId, to: NodeId) -> Vec<ConnUpdate> {
        let Some(fid) = self.flow_id(from, to) else {
            return Vec::new();
        };
        let conn = &mut self.conns[fid as usize];
        let was_active = conn.is_active();
        conn.queue.clear();
        conn.inflight = None;
        if was_active {
            conn.idle_since = now;
            let mut updates = vec![ConnUpdate::Cancel { fid, from, to }];
            updates.extend(self.mark_idle(now, fid));
            updates
        } else {
            Vec::new()
        }
    }

    /// Tears down every connection that touches `node` in either direction
    /// (used when a node leaves or crashes). Returns the aggregated
    /// completion-event updates.
    pub fn close_all_for(&mut self, now: SimTime, node: NodeId) -> Vec<ConnUpdate> {
        let mut keys: Vec<(NodeId, NodeId)> = self
            .flow_pair
            .iter()
            .filter(|&&(a, b)| a == node || b == node)
            .copied()
            .collect();
        keys.sort_unstable_by_key(|&(a, b)| (a.0, b.0));
        let mut updates = Vec::new();
        for (a, b) in keys {
            updates.extend(self.close_connection(now, a, b));
        }
        updates
    }

    /// Tears down every connection touching `node` **and releases the flow
    /// rows** back to the free list, so a retired swarm leaves no residue in
    /// the dense flow table. This is the service-mode teardown path: unlike
    /// [`Network::close_all_for`] (a churn event, after which the pair may
    /// resume), a released pair's next exchange gets a brand-new connection
    /// with fresh slow-start state. Returns the aggregated completion-event
    /// updates.
    pub fn release_flows_for(&mut self, now: SimTime, node: NodeId) -> Vec<ConnUpdate> {
        let mut keys: Vec<(NodeId, NodeId)> = self
            .flow_ids
            .keys()
            .filter(|&&(a, b)| a == node || b == node)
            .copied()
            .collect();
        keys.sort_unstable_by_key(|&(a, b)| (a.0, b.0));
        let mut updates = Vec::new();
        for (a, b) in keys {
            updates.extend(self.close_connection(now, a, b));
            let fid = self
                .flow_ids
                .remove(&(a, b))
                .expect("released pair was live");
            self.free_fids.push(fid);
        }
        updates
    }

    /// Number of live (mapped) flow-table entries — released rows awaiting
    /// reuse are not counted. Service-mode leak tests assert this returns to
    /// baseline after each swarm completes.
    pub fn live_flows(&self) -> usize {
        self.flow_ids.len()
    }

    /// Current aggregate rate of the registered flows crossing `link`, in
    /// bytes/second (cross traffic not included). Combined with
    /// [`crate::topology::Topology::link_capacity`] this gives the core-link
    /// utilisation the service layer samples.
    pub fn link_load(&self, link: LinkId) -> BytesPerSec {
        self.link_usage[link.index()]
    }

    /// Re-prices the flows affected by capacity changes on the core links
    /// carrying the given ordered pairs (used after a scenario rewrites link
    /// characteristics), refreshing the pairs' cached TCP ceilings first
    /// (delay/loss edits move them; bandwidth edits do not).
    pub fn reprice_paths(&mut self, now: SimTime, pairs: &[(NodeId, NodeId)]) -> Vec<ConnUpdate> {
        self.sync_link_tables();
        for &(a, b) in pairs {
            if let Some(fid) = self.flow_id(a, b) {
                let f = fid as usize;
                if self.flow_registered[f] {
                    self.refresh_ceiling(f, a, b);
                }
            }
        }
        let mut links: Vec<LinkId> = pairs
            .iter()
            .map(|&(a, b)| self.topo.core_link(a, b))
            .collect();
        links.sort_unstable();
        links.dedup();
        self.resolve(now, &links, None)
    }

    /// Recomputes the cached ceiling of registered flow `f` (= pair `a → b`)
    /// and folds the change into the per-link ceiling sums.
    fn refresh_ceiling(&mut self, f: usize, a: NodeId, b: NodeId) {
        let new_cap = self.flow_cap(a, b, self.conns[f].bytes_acked);
        let old_cap = self.flow_ceiling[f];
        if new_cap != old_cap {
            self.flow_ceiling[f] = new_cap;
            for l in self.flow_path[f] {
                if self.unconstrained(l) {
                    continue;
                }
                let c = &mut self.link_cap_sum[l.index()];
                *c = (*c + new_cap - old_cap).max(0.0);
            }
        }
    }

    /// Re-solves the whole allocation from scratch, returning updates for
    /// every flow whose rate changed. With correct incremental repricing this
    /// is a no-op (the `fairness_oracle` property test asserts exactly that);
    /// it exists for callers that rewrite the topology wholesale. Every
    /// flow-bearing link is a seed, so nothing is pruned: this is also the
    /// unpruned cross-check of the dirty-link optimisation.
    pub fn reprice_all(&mut self, now: SimTime) -> Vec<ConnUpdate> {
        self.sync_link_tables();
        #[cfg(debug_assertions)]
        self.debug_check_link_tables();
        for f in 0..self.conns.len() {
            if self.flow_registered[f] {
                let (a, b) = self.flow_pair[f];
                self.refresh_ceiling(f, a, b);
            }
        }
        let links: Vec<LinkId> = (0..self.link_flows.len() as u32)
            .map(LinkId)
            .filter(|l| !self.link_flows[l.index()].is_empty())
            .collect();
        self.resolve(now, &links, None)
    }

    /// Usable capacity of `link`: loss-discounted, minus cross traffic.
    fn usable(&self, link: LinkId) -> f64 {
        (self.topo.link_capacity(link) - self.cross[link.index()]).max(MIN_RATE)
    }

    /// True for links that can never constrain anyone: infinite raw capacity
    /// (the shared "core" of a [`crate::topology::Topology::uniform_swarm`],
    /// which models an uncongested backbone). Such links skip the per-link
    /// bookkeeping entirely — registering 10⁴ concurrent flows in one sorted
    /// membership list would turn activation into O(flows) — and component
    /// discovery never crosses them, exactly like a pruned unsaturable link.
    /// Finite links never become infinite (and vice versa), so the guard is
    /// consistent between a flow's registration and its deregistration.
    fn unconstrained(&self, link: LinkId) -> bool {
        self.topo.link_capacity(link).is_infinite()
    }

    /// Registers flow `fid` as active and re-prices what its arrival can
    /// affect.
    ///
    /// **Admission fast path:** if the flow's own ceiling fits inside the
    /// residual slack of every link on its path, it is admitted at the
    /// ceiling without a solve — the previous allocation plus the new
    /// ceiling-capped flow is feasible, no previously unsaturated link
    /// saturates, and every flow keeps its max-min certificate (its own
    /// ceiling, or a saturated link the newcomer does not relieve), so the
    /// extended allocation *is* the new max-min optimum. This is the common
    /// case in a dissemination mesh (fresh slow-start flows on underloaded
    /// links) and keeps steady-state activation O(1).
    fn mark_active(&mut self, now: SimTime, fid: u32) -> Vec<ConnUpdate> {
        self.sync_link_tables();
        let f = fid as usize;
        let (from, to) = self.flow_pair[f];
        let links = self.topo.links_on_path(from, to);
        let key = pair_key(from, to);
        for l in links {
            if self.unconstrained(l) {
                continue;
            }
            link_insert(&mut self.link_flows[l.index()], key, fid);
        }
        let acked = self.conns[f].bytes_acked;
        let cap = self.flow_cap(from, to, acked);
        let fits = links
            .iter()
            .all(|&l| self.link_usage[l.index()] + cap <= self.usable(l) * (1.0 - RATE_EPSILON));
        debug_assert!(!self.flow_registered[f], "double activation");
        self.flow_registered[f] = true;
        self.flow_path[f] = links;
        self.flow_ceiling[f] = cap;
        for l in links {
            if self.unconstrained(l) {
                continue;
            }
            self.link_cap_sum[l.index()] += cap;
        }
        if fits {
            self.flow_rate[f] = cap.max(MIN_RATE);
        }
        // The usage invariant — `link_usage` is the rate sum of the
        // *registered* flows — must hold before the solver runs, because the
        // solver accounts rate changes as deltas against it.
        for l in links {
            if self.unconstrained(l) {
                continue;
            }
            self.link_usage[l.index()] += self.flow_rate[f];
        }
        if fits {
            self.solver_stats.fast_admit += 1;
            let fl = self.conns[f].inflight.as_ref().expect("just started");
            let finish = now + SimDuration::from_secs_f64(fl.bytes_left / self.flow_rate[f]);
            return vec![ConnUpdate::Schedule {
                fid,
                from,
                to,
                at: finish,
            }];
        }
        self.resolve(now, &links, Some(fid))
    }

    /// Deregisters flow `fid` (using the links it registered on, so a
    /// topology remap mid-flight cannot desynchronise the tables) and
    /// re-prices what its departure can affect.
    ///
    /// **Removal fast path:** if the departing flow was pinned at its own
    /// ceiling and none of its links was saturated, no surviving flow's
    /// bottleneck certificate involved those links — removal only adds slack
    /// to links that were not binding anyone, so the remaining allocation is
    /// still the max-min optimum and no solve is needed.
    fn mark_idle(&mut self, now: SimTime, fid: u32) -> Vec<ConnUpdate> {
        let f = fid as usize;
        debug_assert!(self.flow_registered[f], "idle flow was registered");
        self.flow_registered[f] = false;
        let links = self.flow_path[f];
        let (from, to) = self.flow_pair[f];
        let key = pair_key(from, to);
        let rate = self.flow_rate[f];
        let ceiling = self.flow_ceiling[f];
        let ceiling_capped = rate >= ceiling * (1.0 - RATE_EPSILON);
        for l in links {
            if self.unconstrained(l) {
                continue;
            }
            let removed = link_remove(&mut self.link_flows[l.index()], key);
            debug_assert!(removed, "idle flow was not registered on its links");
            self.link_usage[l.index()] = (self.link_usage[l.index()] - rate).max(0.0);
            self.link_cap_sum[l.index()] = (self.link_cap_sum[l.index()] - ceiling).max(0.0);
        }
        let all_unsaturated = links.iter().all(|&l| {
            // Usage *before* this removal, against the current capacity.
            self.link_usage[l.index()] + rate <= self.usable(l) * (1.0 - RATE_EPSILON)
        });
        if ceiling_capped && all_unsaturated {
            self.solver_stats.fast_remove += 1;
            return Vec::new();
        }
        self.resolve(now, &links, None)
    }

    /// The per-flow TCP ceiling of `from → to`: the Mathis loss limit and the
    /// slow-start window limit (the shared links themselves are constraints
    /// of the solver, not of the individual flow). Always finite — the
    /// slow-start cap is — so the per-link ceiling sums are too.
    fn flow_cap(&self, from: NodeId, to: NodeId, bytes_acked: u64) -> f64 {
        let path = crate::tcp::TcpPath {
            bottleneck: f64::INFINITY,
            rtt: self.topo.rtt(from, to),
            loss: self.topo.path(from, to).loss,
        };
        path.mathis_cap().min(path.slow_start_cap(bytes_acked))
    }

    /// Re-solves the max-min allocation of every connected component of the
    /// flow–link graph reachable from `seed_links`, and converts the rate
    /// changes into completion-event updates. `force` names a flow that must
    /// receive a `Schedule` even if its rate is unchanged (a freshly started
    /// in-flight block has no live event yet).
    fn resolve(
        &mut self,
        now: SimTime,
        seed_links: &[LinkId],
        force: Option<u32>,
    ) -> Vec<ConnUpdate> {
        // ---- Component discovery: BFS over the flow–link bipartite graph.
        // Seeds are always taken (their constraint just changed); any other
        // link is crossed only if its registered ceilings could saturate it —
        // an unsaturable link exerts no constraint, so the flows behind it
        // cannot be affected and their rates are left untouched.
        self.mark_stamp += 1;
        let stamp = self.mark_stamp;
        let mut s = std::mem::take(&mut self.scratch);
        s.comp_links.clear();
        s.flows.clear();
        for &l in seed_links {
            if self.link_mark[l.index()] != stamp {
                self.link_mark[l.index()] = stamp;
                // An unconstrained link has no membership list and exerts no
                // constraint: mark it pruned so flow paths skip it, and do
                // not seed the BFS from it.
                if self.unconstrained(l) {
                    self.link_local[l.index()] = NO_LINK;
                    continue;
                }
                self.link_local[l.index()] = s.comp_links.len() as u32;
                s.comp_links.push(l);
            }
        }
        let mut qi = 0;
        while qi < s.comp_links.len() {
            let l = s.comp_links[qi];
            qi += 1;
            for &(_, fid) in &self.link_flows[l.index()] {
                let f = fid as usize;
                if self.flow_mark[f] != stamp {
                    self.flow_mark[f] = stamp;
                    s.flows.push(fid);
                    for nl in self.flow_path[f] {
                        let ni = nl.index();
                        if self.link_mark[ni] != stamp {
                            self.link_mark[ni] = stamp;
                            let saturable =
                                self.link_cap_sum[ni] > self.usable(nl) * (1.0 - PRUNE_MARGIN);
                            if saturable {
                                self.link_local[ni] = s.comp_links.len() as u32;
                                s.comp_links.push(nl);
                            } else {
                                self.link_local[ni] = NO_LINK;
                            }
                        }
                    }
                }
            }
        }
        // A forced flow must always be solved (it needs a fresh Schedule even
        // at an unchanged rate). It is normally discovered through its access
        // links; this guard only matters if every link on its path is
        // unconstrained, where it trivially runs at its own ceiling.
        if let Some(fid) = force {
            let f = fid as usize;
            if self.flow_mark[f] != stamp {
                self.flow_mark[f] = stamp;
                s.flows.push(fid);
            }
        }
        if s.flows.is_empty() {
            self.scratch = s;
            return Vec::new();
        }

        // ---- Solver inputs: local link states, adjacency, cached ceilings.
        s.links.clear();
        if s.link_members.len() < s.comp_links.len() {
            s.link_members.resize_with(s.comp_links.len(), Vec::new);
        }
        for (li, &l) in s.comp_links.iter().enumerate() {
            s.links.push(LinkState {
                capacity: self.usable(l),
                unfrozen: 0,
                frozen_usage: 0.0,
            });
            s.link_members[li].clear();
        }
        s.flow_links.clear();
        s.caps.clear();
        for (i, &fid) in s.flows.iter().enumerate() {
            let f = fid as usize;
            let mut ls = [NO_LINK; 3];
            for (slot, l) in self.flow_path[f].into_iter().enumerate() {
                let local = self.link_local[l.index()];
                if local != NO_LINK {
                    s.links[local as usize].unfrozen += 1;
                    s.link_members[local as usize].push(i as u32);
                }
                ls[slot] = local;
            }
            s.flow_links.push(ls);
            s.caps.push(self.flow_ceiling[f]);
        }
        let heap_peak = max_min_rates(
            &s.caps,
            &s.flow_links,
            &mut s.links,
            &s.link_members,
            &mut s.heaps,
            &mut s.rates,
            &mut s.frozen,
        );
        let st = &mut self.solver_stats;
        st.full_solves += 1;
        st.solved_flows += s.flows.len() as u64;
        st.solved_links += s.comp_links.len() as u64;
        st.max_comp_flows = st.max_comp_flows.max(s.flows.len() as u64);
        st.max_comp_links = st.max_comp_links.max(s.comp_links.len() as u64);
        st.max_heap = st.max_heap.max(heap_peak);

        // ---- Apply: account progress and emit updates for changed flows.
        let mut out = Vec::new();
        for (i, &fid) in s.flows.iter().enumerate() {
            let f = fid as usize;
            let new_rate = s.rates[i].max(MIN_RATE);
            let old_rate = self.flow_rate[f];
            let changed = (new_rate - old_rate).abs() > old_rate * RATE_EPSILON;
            if changed || force == Some(fid) {
                let conn = &mut self.conns[f];
                let fl = conn.inflight.as_mut().expect("active flow has inflight");
                let elapsed = (now - conn.last_progress).as_secs_f64();
                fl.bytes_left = (fl.bytes_left - elapsed * old_rate).max(0.0);
                conn.last_progress = now;
                let bytes_left = fl.bytes_left;
                self.flow_rate[f] = new_rate;
                for l in self.flow_path[f] {
                    if self.unconstrained(l) {
                        continue;
                    }
                    self.link_usage[l.index()] =
                        (self.link_usage[l.index()] + new_rate - old_rate).max(0.0);
                }
                let (from, to) = self.flow_pair[f];
                let finish = now + SimDuration::from_secs_f64(bytes_left / new_rate);
                out.push(ConnUpdate::Schedule {
                    fid,
                    from,
                    to,
                    at: finish,
                });
            }
        }
        self.scratch = s;
        out
    }
}

/// Working state of one link during progressive filling.
#[derive(Debug, Clone)]
struct LinkState {
    /// Usable capacity (loss-discounted, minus cross traffic).
    capacity: f64,
    /// Number of not-yet-frozen flows crossing the link.
    unfrozen: u32,
    /// Capacity consumed by flows already frozen on this link.
    frozen_usage: f64,
}

impl LinkState {
    /// The water level at which this link saturates given its current frozen
    /// usage: `frozen_usage + unfrozen * level == capacity`.
    fn saturation_level(&self) -> f64 {
        debug_assert!(self.unfrozen > 0);
        (self.capacity - self.frozen_usage) / f64::from(self.unfrozen)
    }
}

/// Total-order wrapper so `f64` keys can live in a [`BinaryHeap`].
#[derive(Debug, Clone, Copy)]
struct OrdF64(f64);

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Min-heap entry: a flow's own ceiling. Entries for already-frozen flows are
/// skipped lazily at pop time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct CapEntry {
    cap: OrdF64,
    flow: u32,
}

/// Min-heap entry: a link's saturation level at push time. Every state change
/// of a link bumps its version, so stale entries are skipped lazily.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct SatEntry {
    sat: OrdF64,
    link: u32,
    version: u32,
}

/// The ordered-filling working set, reused across solves.
#[derive(Debug, Clone, Default)]
struct SolverHeaps {
    cap_heap: BinaryHeap<Reverse<CapEntry>>,
    sat_heap: BinaryHeap<Reverse<SatEntry>>,
    /// Per-link entry version; a heap entry is live iff its version matches.
    link_version: Vec<u32>,
    /// Ceiling freezes of the current round, sorted ascending by flow index
    /// before freezing so the per-link `frozen_usage` sums accumulate in the
    /// same order as the historical full-rescan solver (bit-identical rates).
    cand: Vec<u32>,
}

/// Progressive filling: raises one common water level over all flows; a flow
/// freezes at its own ceiling (`caps`) or at the level where a link on its
/// path saturates. Writes the max-min fair rate of each flow into `rates`
/// (reused caller buffers; `link_members` lists each link's flows, and a
/// [`NO_LINK`] slot in `flow_links` is ignored — it names a pruned link that
/// can never saturate).
///
/// Instead of rescanning every flow and link per round, two min-heaps track
/// the next stopping point: one over unfrozen flow ceilings, one over link
/// saturation levels (lazily invalidated via per-link versions — each freeze
/// pushes a fresh entry and bumps the version, so stale entries are skipped
/// at pop time). Within a round, ceiling freezes happen in ascending flow
/// order and saturation freezes all hand out the identical `level`, so the
/// floating-point accumulation into `frozen_usage` replays the historical
/// full-rescan order exactly: rates are bit-identical, in
/// O((flows + links) log(flows + links)) per solve.
///
/// A link counts as saturated when its level is within a combined
/// absolute+relative tolerance of the water level
/// (`level * (1 + SAT_EPS_REL) + SAT_EPS_ABS`): the absolute term keeps the
/// test meaningful at `level == 0`, where a purely relative tolerance
/// degenerates to exact equality (see [`SAT_EPS_ABS`]).
///
/// Returns the peak combined entry count of the two heaps (an observability
/// statistic; see [`SolverStats::max_heap`]).
fn max_min_rates(
    caps: &[f64],
    flow_links: &[[u32; 3]],
    links: &mut [LinkState],
    link_members: &[Vec<u32>],
    heaps: &mut SolverHeaps,
    rates: &mut Vec<f64>,
    frozen: &mut Vec<bool>,
) -> u64 {
    let n = caps.len();
    rates.clear();
    rates.resize(n, 0.0);
    frozen.clear();
    frozen.resize(n, false);
    let SolverHeaps {
        cap_heap,
        sat_heap,
        link_version,
        cand,
    } = heaps;
    cap_heap.clear();
    sat_heap.clear();
    link_version.clear();
    link_version.resize(links.len(), 0);
    for (i, &c) in caps.iter().enumerate() {
        cap_heap.push(Reverse(CapEntry {
            cap: OrdF64(c),
            flow: i as u32,
        }));
    }
    for (li, l) in links.iter().enumerate() {
        if l.unfrozen > 0 {
            sat_heap.push(Reverse(SatEntry {
                sat: OrdF64(l.saturation_level()),
                link: li as u32,
                version: 0,
            }));
        }
    }
    let mut remaining = n;
    let mut level = 0.0f64;
    let mut heap_peak = (cap_heap.len() + sat_heap.len()) as u64;

    // Freezing helper as a closure is blocked by borrow rules; a macro keeps
    // the link bookkeeping (including heap maintenance) in one place.
    macro_rules! freeze {
        ($i:expr, $rate:expr) => {{
            let i: usize = $i;
            let r: f64 = $rate;
            rates[i] = r;
            frozen[i] = true;
            remaining -= 1;
            for &li in &flow_links[i] {
                if li == NO_LINK {
                    continue;
                }
                let li = li as usize;
                links[li].unfrozen -= 1;
                links[li].frozen_usage += r;
                link_version[li] = link_version[li].wrapping_add(1);
                if links[li].unfrozen > 0 {
                    sat_heap.push(Reverse(SatEntry {
                        sat: OrdF64(links[li].saturation_level()),
                        link: li as u32,
                        version: link_version[li],
                    }));
                }
            }
        }};
    }

    while remaining > 0 {
        heap_peak = heap_peak.max((cap_heap.len() + sat_heap.len()) as u64);
        // The next stopping point: the lowest unfrozen flow ceiling or live
        // link saturation level at or above the current water level.
        let cap_top = loop {
            match cap_heap.peek() {
                Some(&Reverse(e)) if frozen[e.flow as usize] => {
                    cap_heap.pop();
                }
                Some(&Reverse(e)) => break Some(e.cap.0),
                None => break None,
            }
        };
        let sat_top = loop {
            match sat_heap.peek() {
                Some(&Reverse(e)) => {
                    let li = e.link as usize;
                    if e.version != link_version[li] || links[li].unfrozen == 0 {
                        sat_heap.pop();
                    } else {
                        break Some(e.sat.0);
                    }
                }
                None => break None,
            }
        };
        let mut next = f64::INFINITY;
        if let Some(c) = cap_top {
            next = next.min(c);
        }
        if let Some(sl) = sat_top {
            next = next.min(sl);
        }
        level = next.max(level);
        let mut any = false;

        // Flows that hit their own ceiling freeze at the ceiling, in
        // ascending flow order (see `SolverHeaps::cand`).
        cand.clear();
        while let Some(&Reverse(e)) = cap_heap.peek() {
            if e.cap.0 > level {
                break;
            }
            cap_heap.pop();
            if !frozen[e.flow as usize] {
                cand.push(e.flow);
            }
        }
        cand.sort_unstable();
        for &fi in cand.iter() {
            let i = fi as usize;
            if !frozen[i] {
                freeze!(i, caps[i]);
                any = true;
            }
        }

        // Links that saturate at (or, through floating-point drift, just
        // below) the level freeze their remaining flows at the level. One
        // saturation can lower another link's level; the freeze above already
        // pushed the updated entries, so popping until the heap's minimum
        // clears the tolerance sweeps the cascade to fixpoint.
        let thr = level * (1.0 + SAT_EPS_REL) + SAT_EPS_ABS;
        while let Some(&Reverse(e)) = sat_heap.peek() {
            let li = e.link as usize;
            if e.version != link_version[li] || links[li].unfrozen == 0 {
                sat_heap.pop();
                continue;
            }
            if e.sat.0 > thr {
                break;
            }
            sat_heap.pop();
            for &fi in &link_members[li] {
                let i = fi as usize;
                if !frozen[i] {
                    freeze!(i, level);
                }
            }
            any = true;
        }
        if !any {
            // Unreachable by construction (the level was chosen as an
            // achieved minimum), but guarantees termination outright.
            for i in 0..n {
                if !frozen[i] {
                    freeze!(i, level);
                }
            }
        }
    }
    heap_peak
}

#[cfg(test)]
mod tests;
