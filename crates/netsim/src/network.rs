//! The fluid connection model.
//!
//! Every ordered pair of peers that exchanges data owns a [`Connection`]: a
//! FIFO of queued blocks served at the connection's current rate. The rate is
//! the minimum of
//!
//! * the TCP ceiling of the core path (loss & window limited, see
//!   [`crate::tcp`]), and
//! * the sender's uplink and the receiver's downlink capacity divided evenly
//!   among their currently *active* connections (an active connection is one
//!   with a block in flight).
//!
//! Rates are re-evaluated whenever a connection becomes active or idle at
//! either endpoint, when a scenario rewrites link characteristics, and when a
//! block completes (the slow-start window has grown). Each active connection
//! has exactly **one** live completion event in the driver's queue; the
//! [`Network`] returns [`ConnUpdate`] records telling the caller (the
//! [`crate::runner::Runner`]) to move that event ([`ConnUpdate::Schedule`])
//! or drop it ([`ConnUpdate::Cancel`]) through the cancellable
//! [`desim::EventQueue`]. Earlier revisions instead abandoned stale heap
//! entries and filtered them with a per-connection generation counter on pop;
//! the cancellable queue removes that protocol and the stale-event flood that
//! came with it.
//!
//! The connection also records the two sender-side measurements Bullet′'s
//! flow controller consumes (§3.3.3): `in_front`, the number of blocks queued
//! ahead when a block was enqueued, and `wasted`, the idle gap (negative) or
//! queue-wait time (positive) associated with the block.

use std::collections::{HashMap, HashSet, VecDeque};

use desim::{SimDuration, SimTime};
use dissem_codec::BlockId;
use rand::Rng;

use crate::tcp::TcpPath;
use crate::topology::{NodeId, Topology};
use crate::units::BytesPerSec;

/// Information handed to the receiving protocol when a block arrives.
#[derive(Debug, Clone, Copy)]
pub struct BlockReceipt {
    /// The delivered block.
    pub block: BlockId,
    /// Size of the delivered block in bytes.
    pub bytes: u64,
    /// Number of blocks that were queued ahead of this one (including the one
    /// in the "socket buffer") when it was enqueued at the sender.
    pub in_front: u32,
    /// Sender-side wasted time in seconds: negative is idle time the sender
    /// spent with an empty queue immediately before this block was enqueued,
    /// positive is the time this block waited in the queue before service.
    pub wasted: f64,
    /// When the sending protocol enqueued the block.
    pub queued_at: SimTime,
    /// When the block arrived at the receiver.
    pub delivered_at: SimTime,
}

/// A completion record produced by the sender side of a connection; the
/// runner turns it into a delivery event after the propagation delay.
#[derive(Debug, Clone, Copy)]
pub struct CompletedBlock {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The block that finished serialising at the sender.
    pub block: BlockId,
    /// Block size in bytes.
    pub bytes: u64,
    /// See [`BlockReceipt::in_front`].
    pub in_front: u32,
    /// See [`BlockReceipt::wasted`].
    pub wasted: f64,
    /// When the block was enqueued.
    pub queued_at: SimTime,
}

/// Instruction for the driver to keep a connection's single completion event
/// in sync with the fluid model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConnUpdate {
    /// The in-flight block on `from → to` now finishes at `at`: move the
    /// connection's completion event there (or create it if none is live).
    Schedule {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Absolute time at which the in-flight block finishes serialising.
        at: SimTime,
    },
    /// The `from → to` connection no longer has a block in flight: cancel its
    /// completion event.
    Cancel {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
    },
}

/// A block waiting in a connection's queue.
#[derive(Debug, Clone, Copy)]
struct QueuedBlock {
    block: BlockId,
    bytes: u64,
    queued_at: SimTime,
    in_front: u32,
    idle_gap: f64,
}

/// The block currently being serialised onto the wire.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    block: BlockId,
    bytes: u64,
    bytes_left: f64,
    queued_at: SimTime,
    started_at: SimTime,
    in_front: u32,
    idle_gap: f64,
}

/// State of one directional sender→receiver data connection.
#[derive(Debug)]
pub struct Connection {
    queue: VecDeque<QueuedBlock>,
    inflight: Option<InFlight>,
    /// Current service rate in bytes/second (meaningful while active).
    rate: BytesPerSec,
    /// Last instant at which `bytes_left` was brought up to date.
    last_progress: SimTime,
    /// Total bytes whose transmission has completed (drives slow start).
    bytes_acked: u64,
    /// When the connection last became idle.
    idle_since: SimTime,
}

impl Connection {
    fn new(now: SimTime) -> Self {
        Connection {
            queue: VecDeque::new(),
            inflight: None,
            rate: 1.0,
            last_progress: now,
            bytes_acked: 0,
            idle_since: now,
        }
    }

    /// True when a block is being serialised.
    pub fn is_active(&self) -> bool {
        self.inflight.is_some()
    }

    /// Number of blocks queued or in flight on this connection.
    pub fn pending_blocks(&self) -> usize {
        self.queue.len() + usize::from(self.inflight.is_some())
    }

    /// Bytes queued or in flight on this connection.
    pub fn pending_bytes(&self) -> u64 {
        let inflight = self
            .inflight
            .map(|f| f.bytes_left.ceil() as u64)
            .unwrap_or(0);
        inflight + self.queue.iter().map(|q| q.bytes).sum::<u64>()
    }

    /// Current service rate estimate in bytes/second.
    pub fn current_rate(&self) -> BytesPerSec {
        self.rate
    }

    /// Total bytes delivered on this connection so far.
    pub fn bytes_acked(&self) -> u64 {
        self.bytes_acked
    }
}

/// Per-node traffic accounting maintained by the emulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeTraffic {
    /// Bytes of control messages sent.
    pub control_bytes_out: u64,
    /// Bytes of control messages received.
    pub control_bytes_in: u64,
    /// Number of control messages sent.
    pub control_msgs_out: u64,
    /// Data bytes handed to the receiving protocol.
    pub data_bytes_in: u64,
    /// Data bytes whose serialisation completed at this sender.
    pub data_bytes_out: u64,
    /// Data blocks delivered to this node.
    pub blocks_in: u64,
    /// Data blocks sent by this node.
    pub blocks_out: u64,
}

/// The emulated network: topology + live connection state + traffic counters.
#[derive(Debug)]
pub struct Network {
    topo: Topology,
    conns: HashMap<(NodeId, NodeId), Connection>,
    out_active: Vec<u32>,
    in_active: Vec<u32>,
    active_by_node: Vec<HashSet<(NodeId, NodeId)>>,
    traffic: Vec<NodeTraffic>,
}

impl Network {
    /// Wraps a topology with empty connection state.
    pub fn new(topo: Topology) -> Self {
        let n = topo.len();
        Network {
            topo,
            conns: HashMap::new(),
            out_active: vec![0; n],
            in_active: vec![0; n],
            active_by_node: vec![HashSet::new(); n],
            traffic: vec![NodeTraffic::default(); n],
        }
    }

    /// The underlying topology (read-only).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Mutable topology access, used by dynamic-bandwidth scenarios. Callers
    /// must follow up with [`Network::reprice_paths`] for affected pairs.
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// Number of emulated hosts.
    pub fn len(&self) -> usize {
        self.topo.len()
    }

    /// Returns true if the network has no hosts (never for valid topologies).
    pub fn is_empty(&self) -> bool {
        self.topo.is_empty()
    }

    /// Traffic counters for `node`.
    pub fn traffic(&self, node: NodeId) -> &NodeTraffic {
        &self.traffic[node.index()]
    }

    /// Connection state for `from → to`, if one exists.
    pub fn connection(&self, from: NodeId, to: NodeId) -> Option<&Connection> {
        self.conns.get(&(from, to))
    }

    /// Number of blocks queued + in flight from `from` to `to`.
    pub fn pending_blocks(&self, from: NodeId, to: NodeId) -> usize {
        self.connection(from, to)
            .map_or(0, Connection::pending_blocks)
    }

    fn tcp_path(&self, from: NodeId, to: NodeId) -> TcpPath {
        let p = self.topo.path(from, to);
        TcpPath {
            bottleneck: p.bw,
            rtt: self.topo.rtt(from, to),
            loss: p.loss,
        }
    }

    /// Delivery delay for a `bytes`-sized control message from `from` to
    /// `to`, including an occasional loss-induced retransmission penalty.
    pub fn control_delay<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        from: NodeId,
        to: NodeId,
        bytes: usize,
    ) -> SimDuration {
        let prop = self.topo.one_way_delay(from, to);
        let path = self.topo.path(from, to);
        let access = self
            .topo
            .node(from)
            .up
            .min(self.topo.node(to).down)
            .max(1.0);
        let serialisation = SimDuration::from_secs_f64(bytes as f64 / access.min(path.bw.max(1.0)));
        // A lost control packet waits for a TCP retransmission: roughly one
        // RTT plus a minimum RTO floor.
        let mut penalty = SimDuration::ZERO;
        if path.loss > 0.0 && rng.gen_bool(path.loss.min(0.5)) {
            penalty = self.topo.rtt(from, to) + SimDuration::from_millis(200);
        }
        self.traffic[from.index()].control_bytes_out += bytes as u64;
        self.traffic[from.index()].control_msgs_out += 1;
        self.traffic[to.index()].control_bytes_in += bytes as u64;
        prop + serialisation + penalty
    }

    /// One-way propagation delay used for data-block delivery after the
    /// block finishes serialising at the sender.
    pub fn data_delivery_delay(&self, from: NodeId, to: NodeId) -> SimDuration {
        self.topo.one_way_delay(from, to)
    }

    /// Enqueues a block on the `from → to` connection, creating the
    /// connection if needed. Returns the completion-event updates caused by
    /// rate changes.
    pub fn queue_block(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        block: BlockId,
        bytes: u64,
    ) -> Vec<ConnUpdate> {
        assert!(from != to, "a node cannot stream blocks to itself");
        let conn = self
            .conns
            .entry((from, to))
            .or_insert_with(|| Connection::new(now));
        let in_front = conn.pending_blocks() as u32;
        let idle_gap = if conn.is_active() || !conn.queue.is_empty() {
            0.0
        } else {
            (now - conn.idle_since).as_secs_f64()
        };
        conn.queue.push_back(QueuedBlock {
            block,
            bytes,
            queued_at: now,
            in_front,
            idle_gap,
        });
        if conn.is_active() {
            Vec::new()
        } else {
            self.start_next(now, from, to);
            self.mark_active(now, from, to)
        }
    }

    /// Pops the next queued block into the in-flight slot. The caller is
    /// responsible for activation bookkeeping and rescheduling.
    fn start_next(&mut self, now: SimTime, from: NodeId, to: NodeId) {
        let conn = self.conns.get_mut(&(from, to)).expect("connection exists");
        debug_assert!(conn.inflight.is_none());
        if let Some(q) = conn.queue.pop_front() {
            conn.inflight = Some(InFlight {
                block: q.block,
                bytes: q.bytes,
                bytes_left: q.bytes as f64,
                queued_at: q.queued_at,
                started_at: now,
                in_front: q.in_front,
                idle_gap: q.idle_gap,
            });
            conn.last_progress = now;
        }
    }

    /// Handles the completion event for connection `from → to`. With the
    /// cancellable queue there is at most one live completion event per
    /// connection, so a firing event always refers to the current in-flight
    /// block; `None` is only returned defensively if the connection does not
    /// exist or has nothing in flight (which indicates a driver bug).
    pub fn on_block_done(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
    ) -> Option<(CompletedBlock, Vec<ConnUpdate>)> {
        let conn = self.conns.get_mut(&(from, to))?;
        let fl = conn.inflight.take()?;
        conn.bytes_acked += fl.bytes;
        conn.last_progress = now;
        let wasted = if fl.idle_gap > 0.0 {
            -fl.idle_gap
        } else {
            (fl.started_at - fl.queued_at).as_secs_f64()
        };
        let completed = CompletedBlock {
            from,
            to,
            block: fl.block,
            bytes: fl.bytes,
            in_front: fl.in_front,
            wasted,
            queued_at: fl.queued_at,
        };
        self.traffic[from.index()].data_bytes_out += fl.bytes;
        self.traffic[from.index()].blocks_out += 1;

        let has_more = !self.conns[&(from, to)].queue.is_empty();
        let updates = if has_more {
            self.start_next(now, from, to);
            // The connection stays active; only its own slow-start ceiling
            // moved, so re-price just this connection.
            self.reprice_connection(now, from, to).into_iter().collect()
        } else {
            let conn = self.conns.get_mut(&(from, to)).expect("connection exists");
            conn.idle_since = now;
            // The fired event was the connection's only live one, so there is
            // nothing to cancel; the endpoints' shares changed, though.
            self.mark_idle(now, from, to)
        };
        Some((completed, updates))
    }

    /// Records the receiver-side arrival of a block (traffic accounting).
    pub fn on_block_delivered(&mut self, to: NodeId, bytes: u64) {
        self.traffic[to.index()].data_bytes_in += bytes;
        self.traffic[to.index()].blocks_in += 1;
    }

    /// Closes the `from → to` connection, dropping queued and in-flight
    /// blocks. Returns a cancellation for this connection's completion event
    /// (if one was live) plus updates for the peers whose shares changed.
    pub fn close_connection(&mut self, now: SimTime, from: NodeId, to: NodeId) -> Vec<ConnUpdate> {
        let Some(conn) = self.conns.get_mut(&(from, to)) else {
            return Vec::new();
        };
        let was_active = conn.is_active();
        conn.queue.clear();
        conn.inflight = None;
        if was_active {
            conn.idle_since = now;
            let mut updates = vec![ConnUpdate::Cancel { from, to }];
            updates.extend(self.mark_idle(now, from, to));
            updates
        } else {
            Vec::new()
        }
    }

    /// Tears down every connection that touches `node` in either direction
    /// (used when a node leaves or crashes). Returns the aggregated
    /// completion-event updates.
    pub fn close_all_for(&mut self, now: SimTime, node: NodeId) -> Vec<ConnUpdate> {
        let mut keys: Vec<(NodeId, NodeId)> = self
            .conns
            .keys()
            .filter(|&&(a, b)| a == node || b == node)
            .copied()
            .collect();
        keys.sort_unstable_by_key(|(a, b)| (a.0, b.0));
        let mut updates = Vec::new();
        for (a, b) in keys {
            updates.extend(self.close_connection(now, a, b));
        }
        updates
    }

    /// Re-prices connections between the given ordered pairs (used after a
    /// scenario rewrites link characteristics).
    pub fn reprice_paths(&mut self, now: SimTime, pairs: &[(NodeId, NodeId)]) -> Vec<ConnUpdate> {
        let mut out = Vec::new();
        for &(a, b) in pairs {
            if let Some(r) = self.reprice_connection(now, a, b) {
                out.push(r);
            }
        }
        out
    }

    fn mark_active(&mut self, now: SimTime, from: NodeId, to: NodeId) -> Vec<ConnUpdate> {
        self.out_active[from.index()] += 1;
        self.in_active[to.index()] += 1;
        self.active_by_node[from.index()].insert((from, to));
        self.active_by_node[to.index()].insert((from, to));
        self.reprice_endpoints(now, from, to)
    }

    fn mark_idle(&mut self, now: SimTime, from: NodeId, to: NodeId) -> Vec<ConnUpdate> {
        debug_assert!(self.out_active[from.index()] > 0);
        debug_assert!(self.in_active[to.index()] > 0);
        self.out_active[from.index()] -= 1;
        self.in_active[to.index()] -= 1;
        self.active_by_node[from.index()].remove(&(from, to));
        self.active_by_node[to.index()].remove(&(from, to));
        self.reprice_endpoints(now, from, to)
    }

    /// Re-prices every active connection that touches either endpoint.
    fn reprice_endpoints(&mut self, now: SimTime, from: NodeId, to: NodeId) -> Vec<ConnUpdate> {
        let mut keys: Vec<(NodeId, NodeId)> = self.active_by_node[from.index()]
            .iter()
            .chain(self.active_by_node[to.index()].iter())
            .copied()
            .collect();
        keys.sort_unstable_by_key(|(a, b)| (a.0, b.0));
        keys.dedup();
        let mut out = Vec::with_capacity(keys.len());
        for (a, b) in keys {
            if let Some(r) = self.reprice_connection(now, a, b) {
                out.push(r);
            }
        }
        out
    }

    /// Brings the in-flight block of `from → to` up to date and recomputes its
    /// service rate; returns the new completion estimate if the connection is
    /// active.
    fn reprice_connection(&mut self, now: SimTime, from: NodeId, to: NodeId) -> Option<ConnUpdate> {
        let path = self.tcp_path(from, to);
        let up_share = self.topo.node(from).up / f64::from(self.out_active[from.index()].max(1));
        let down_share = self.topo.node(to).down / f64::from(self.in_active[to.index()].max(1));
        let conn = self.conns.get_mut(&(from, to))?;
        let fl = conn.inflight.as_mut()?;

        // Account for progress made at the previous rate.
        let elapsed = (now - conn.last_progress).as_secs_f64();
        fl.bytes_left = (fl.bytes_left - elapsed * conn.rate).max(0.0);
        conn.last_progress = now;

        conn.rate = path
            .cap(conn.bytes_acked)
            .min(up_share)
            .min(down_share)
            .max(1.0);
        let finish = now + SimDuration::from_secs_f64(fl.bytes_left / conn.rate);
        Some(ConnUpdate::Schedule {
            from,
            to,
            at: finish,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{constrained_access, NodeSpec, PathSpec};
    use crate::units::mbps;
    use desim::RngFactory;

    fn two_node_topo(core_mbps: f64, access_mbps: f64) -> Topology {
        let node = NodeSpec {
            up: mbps(access_mbps),
            down: mbps(access_mbps),
            access_delay: SimDuration::from_millis(1),
        };
        let path = PathSpec {
            bw: mbps(core_mbps),
            delay: SimDuration::from_millis(10),
            loss: 0.0,
        };
        Topology::new(vec![node; 2], vec![vec![path; 2]; 2])
    }

    /// Extracts the completion time of the `Schedule` update for `from → to`.
    fn sched_at(updates: &[ConnUpdate], from: NodeId, to: NodeId) -> SimTime {
        updates
            .iter()
            .find_map(|u| match u {
                ConnUpdate::Schedule { from: f, to: t, at } if (*f, *t) == (from, to) => Some(*at),
                _ => None,
            })
            .expect("a Schedule update for the pair")
    }

    #[test]
    fn single_block_completes_at_expected_rate() {
        let mut net = Network::new(two_node_topo(2.0, 6.0));
        let now = SimTime::ZERO;
        let r = net.queue_block(now, NodeId(0), NodeId(1), BlockId(0), 250_000);
        assert_eq!(r.len(), 1);
        // Slow start dominates a fresh connection, so completion takes longer
        // than the raw 1-second serialisation at 2 Mbps (250 KB / 250 KB/s).
        let at = sched_at(&r, NodeId(0), NodeId(1));
        let finish = at.as_secs_f64();
        assert!(
            finish > 1.0,
            "finish {finish} should exceed the raw serialisation time"
        );
        assert!(finish < 10.0, "finish {finish} unreasonably late");
        let (done, _) = net
            .on_block_done(at, NodeId(0), NodeId(1))
            .expect("block in flight");
        assert_eq!(done.block, BlockId(0));
        assert_eq!(done.bytes, 250_000);
        assert_eq!(done.in_front, 0);
        assert!(
            done.wasted <= 0.0,
            "first block on an idle connection has idle-gap wasted time"
        );
    }

    #[test]
    fn completion_without_inflight_is_rejected() {
        let mut net = Network::new(two_node_topo(2.0, 6.0));
        // No connection at all.
        assert!(net
            .on_block_done(SimTime::ZERO, NodeId(0), NodeId(1))
            .is_none());
        let r = net.queue_block(SimTime::ZERO, NodeId(0), NodeId(1), BlockId(0), 16_384);
        // Queueing a second block on an active connection produces no update:
        // the live completion event is untouched.
        let r2 = net.queue_block(SimTime::ZERO, NodeId(0), NodeId(1), BlockId(1), 16_384);
        assert!(r2.is_empty());
        // Draining both blocks empties the connection; a further completion
        // has nothing in flight and is rejected.
        let at = sched_at(&r, NodeId(0), NodeId(1));
        let (_, u1) = net.on_block_done(at, NodeId(0), NodeId(1)).unwrap();
        let at1 = sched_at(&u1, NodeId(0), NodeId(1));
        let (_, _) = net.on_block_done(at1, NodeId(0), NodeId(1)).unwrap();
        assert!(net.on_block_done(at1, NodeId(0), NodeId(1)).is_none());
    }

    #[test]
    fn queued_blocks_report_in_front_and_wait() {
        let mut net = Network::new(two_node_topo(2.0, 6.0));
        let t0 = SimTime::ZERO;
        let r = net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 16_384);
        net.queue_block(t0, NodeId(0), NodeId(1), BlockId(1), 16_384);
        net.queue_block(t0, NodeId(0), NodeId(1), BlockId(2), 16_384);
        assert_eq!(net.pending_blocks(NodeId(0), NodeId(1)), 3);

        // Complete the first block.
        let at0 = sched_at(&r, NodeId(0), NodeId(1));
        let (b0, r1) = net.on_block_done(at0, NodeId(0), NodeId(1)).unwrap();
        assert_eq!(b0.in_front, 0);
        // The second block starts immediately and reports one block in front.
        let at1 = sched_at(&r1, NodeId(0), NodeId(1));
        let (b1, r2) = net.on_block_done(at1, NodeId(0), NodeId(1)).unwrap();
        assert_eq!(b1.block, BlockId(1));
        assert_eq!(b1.in_front, 1);
        assert!(
            b1.wasted > 0.0,
            "queued block should report positive waiting time"
        );
        let at2 = sched_at(&r2, NodeId(0), NodeId(1));
        let (b2, _) = net.on_block_done(at2, NodeId(0), NodeId(1)).unwrap();
        assert_eq!(b2.in_front, 2);
    }

    #[test]
    fn concurrent_connections_share_access_link() {
        // Constrained access topology: 800 Kbps uplink, 10 Mbps core.
        let mut net = Network::new(constrained_access(3));
        let t0 = SimTime::ZERO;
        let r1 = net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 100_000);
        let single_rate = net.connection(NodeId(0), NodeId(1)).unwrap().current_rate();
        let _r2 = net.queue_block(t0, NodeId(0), NodeId(2), BlockId(1), 100_000);
        let shared_rate = net.connection(NodeId(0), NodeId(1)).unwrap().current_rate();
        assert!(
            shared_rate < single_rate,
            "adding a second outgoing flow must reduce the first one's share"
        );
        assert!(sched_at(&r1, NodeId(0), NodeId(1)) > t0);
    }

    #[test]
    fn closing_a_connection_cancels_and_restores_shares() {
        let mut net = Network::new(constrained_access(3));
        let t0 = SimTime::ZERO;
        net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 1_000_000);
        net.queue_block(t0, NodeId(0), NodeId(2), BlockId(1), 1_000_000);
        let shared = net.connection(NodeId(0), NodeId(1)).unwrap().current_rate();
        let later = SimTime::from_secs_f64(1.0);
        let rs = net.close_connection(later, NodeId(0), NodeId(2));
        assert!(
            rs.contains(&ConnUpdate::Cancel {
                from: NodeId(0),
                to: NodeId(2)
            }),
            "closing an active connection cancels its completion event: {rs:?}"
        );
        // ... and re-prices the survivor.
        let _ = sched_at(&rs, NodeId(0), NodeId(1));
        let alone = net.connection(NodeId(0), NodeId(1)).unwrap().current_rate();
        assert!(alone > shared);
        assert_eq!(net.pending_blocks(NodeId(0), NodeId(2)), 0);
        // Closing an idle connection produces nothing.
        assert!(net.close_connection(later, NodeId(0), NodeId(2)).is_empty());
    }

    #[test]
    fn close_all_for_tears_down_both_directions() {
        let mut net = Network::new(constrained_access(4));
        let t0 = SimTime::ZERO;
        net.queue_block(t0, NodeId(1), NodeId(0), BlockId(0), 500_000);
        net.queue_block(t0, NodeId(1), NodeId(2), BlockId(1), 500_000);
        net.queue_block(t0, NodeId(3), NodeId(1), BlockId(2), 500_000);
        net.queue_block(t0, NodeId(0), NodeId(2), BlockId(3), 500_000);
        let updates = net.close_all_for(SimTime::from_secs_f64(0.5), NodeId(1));
        let cancels: Vec<_> = updates
            .iter()
            .filter(|u| matches!(u, ConnUpdate::Cancel { .. }))
            .collect();
        assert_eq!(
            cancels.len(),
            3,
            "all three connections touching node 1: {updates:?}"
        );
        assert_eq!(net.pending_blocks(NodeId(1), NodeId(0)), 0);
        assert_eq!(net.pending_blocks(NodeId(1), NodeId(2)), 0);
        assert_eq!(net.pending_blocks(NodeId(3), NodeId(1)), 0);
        // Unrelated connections keep flowing.
        assert_eq!(net.pending_blocks(NodeId(0), NodeId(2)), 1);
    }

    #[test]
    fn reprice_paths_after_bandwidth_change() {
        let mut net = Network::new(two_node_topo(2.0, 6.0));
        let t0 = SimTime::ZERO;
        let r = net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 2_000_000);
        let original_finish = sched_at(&r, NodeId(0), NodeId(1));
        // Halve the core bandwidth at t = 1s.
        let t1 = SimTime::from_secs_f64(1.0);
        net.topology_mut().path_mut(NodeId(0), NodeId(1)).bw = mbps(1.0);
        let rs = net.reprice_paths(t1, &[(NodeId(0), NodeId(1))]);
        assert_eq!(rs.len(), 1);
        assert!(
            sched_at(&rs, NodeId(0), NodeId(1)) > original_finish,
            "less bandwidth must push completion later"
        );
    }

    #[test]
    fn traffic_counters_accumulate() {
        let mut net = Network::new(two_node_topo(2.0, 6.0));
        let mut rng = RngFactory::new(1).stream("ctl");
        let d = net.control_delay(&mut rng, NodeId(0), NodeId(1), 100);
        assert!(d > SimDuration::ZERO);
        assert_eq!(net.traffic(NodeId(0)).control_bytes_out, 100);
        assert_eq!(net.traffic(NodeId(1)).control_bytes_in, 100);

        let r = net.queue_block(SimTime::ZERO, NodeId(0), NodeId(1), BlockId(0), 500);
        let at = sched_at(&r, NodeId(0), NodeId(1));
        net.on_block_done(at, NodeId(0), NodeId(1)).unwrap();
        net.on_block_delivered(NodeId(1), 500);
        assert_eq!(net.traffic(NodeId(0)).data_bytes_out, 500);
        assert_eq!(net.traffic(NodeId(1)).data_bytes_in, 500);
        assert_eq!(net.traffic(NodeId(1)).blocks_in, 1);
    }

    #[test]
    #[should_panic(expected = "cannot stream blocks to itself")]
    fn self_connection_rejected() {
        let mut net = Network::new(two_node_topo(2.0, 6.0));
        net.queue_block(SimTime::ZERO, NodeId(0), NodeId(0), BlockId(0), 10);
    }
}
