//! The fluid connection model: global max-min fair sharing over the
//! topology's link graph.
//!
//! Every ordered pair of peers that exchanges data owns a [`Connection`]: a
//! FIFO of queued blocks served at the connection's current rate. A
//! connection with a block in flight is an active **flow** crossing three
//! directed links — the sender's uplink, a core link (possibly shared with
//! other pairs), and the receiver's downlink (see
//! [`crate::topology::Topology::links_on_path`]). Rates are assigned by
//! **progressive filling**: one common water level rises across all flows of
//! a component; a flow freezes when a link on its path saturates or when it
//! hits its own TCP ceiling (Mathis loss limit and slow start, see
//! [`crate::tcp`]). The result is the unique global max-min fair allocation,
//! the fluid equivalent of many long-lived TCP flows sharing a network —
//! `docs/NETWORK_MODEL.md` develops the model in full, with a worked example.
//!
//! ## Incremental repricing
//!
//! Rates must be re-assigned whenever the flow set or the constraints change:
//! a flow starts or stops, a block completes (the slow-start ceiling moved),
//! a scenario rewrites link capacities, or cross traffic changes a link's
//! occupancy. A change can only affect flows connected to it through shared
//! links, so the model re-solves exactly the **connected component** of the
//! flow–link graph containing the changed links and leaves every other
//! component untouched; a from-scratch solve decomposes per component, so the
//! incremental result is identical (the `fairness_oracle` property test
//! enforces this). Only flows whose rate actually changed get a new
//! completion estimate.
//!
//! Each active connection has exactly **one** live completion event in the
//! driver's queue; the [`Network`] returns [`ConnUpdate`] records telling the
//! caller (the [`crate::runner::Runner`]) to move that event
//! ([`ConnUpdate::Schedule`]) or drop it ([`ConnUpdate::Cancel`]) through the
//! cancellable [`desim::EventQueue`].
//!
//! The connection also records the two sender-side measurements Bullet′'s
//! flow controller consumes (§3.3.3): `in_front`, the number of blocks queued
//! ahead when a block was enqueued, and `wasted`, the idle gap (negative) or
//! queue-wait time (positive) associated with the block.
//!
//! ## Example
//!
//! Two flows from one sender share its access uplink; the fluid model
//! halves their rates and re-prices both completion events:
//!
//! ```
//! use desim::SimTime;
//! use dissem_codec::BlockId;
//! use netsim::{topology, Network, NodeId};
//!
//! let mut net = Network::new(topology::constrained_access(3));
//! let t0 = SimTime::ZERO;
//! net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 100_000);
//! let alone = net.connection(NodeId(0), NodeId(1)).unwrap().current_rate();
//! let updates = net.queue_block(t0, NodeId(0), NodeId(2), BlockId(1), 100_000);
//! assert_eq!(updates.len(), 2, "both flows re-priced");
//! let shared = net.connection(NodeId(0), NodeId(1)).unwrap().current_rate();
//! assert!(shared < alone);
//! ```

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use desim::{SimDuration, SimTime};
use dissem_codec::BlockId;
use rand::Rng;

use crate::topology::{LinkId, NodeId, Topology};
use crate::units::BytesPerSec;

/// A connection never stalls completely: TCP retransmits eventually, so the
/// fluid model floors every rate at one byte per second.
const MIN_RATE: BytesPerSec = 1.0;

/// Relative rate-change threshold below which a flow keeps its old rate and
/// its live completion event: re-scheduling on every last-ulp wiggle of the
/// solver would flood the event queue without changing any outcome.
const RATE_EPSILON: f64 = 1e-9;

/// Information handed to the receiving protocol when a block arrives.
#[derive(Debug, Clone, Copy)]
pub struct BlockReceipt {
    /// The delivered block.
    pub block: BlockId,
    /// Size of the delivered block in bytes.
    pub bytes: u64,
    /// Number of blocks that were queued ahead of this one (including the one
    /// in the "socket buffer") when it was enqueued at the sender.
    pub in_front: u32,
    /// Sender-side wasted time in seconds: negative is idle time the sender
    /// spent with an empty queue immediately before this block was enqueued,
    /// positive is the time this block waited in the queue before service.
    pub wasted: f64,
    /// When the sending protocol enqueued the block.
    pub queued_at: SimTime,
    /// When the block arrived at the receiver.
    pub delivered_at: SimTime,
}

/// A completion record produced by the sender side of a connection; the
/// runner turns it into a delivery event after the propagation delay.
#[derive(Debug, Clone, Copy)]
pub struct CompletedBlock {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The block that finished serialising at the sender.
    pub block: BlockId,
    /// Block size in bytes.
    pub bytes: u64,
    /// See [`BlockReceipt::in_front`].
    pub in_front: u32,
    /// See [`BlockReceipt::wasted`].
    pub wasted: f64,
    /// When the block was enqueued.
    pub queued_at: SimTime,
}

/// Instruction for the driver to keep a connection's single completion event
/// in sync with the fluid model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConnUpdate {
    /// The in-flight block on `from → to` now finishes at `at`: move the
    /// connection's completion event there (or create it if none is live).
    Schedule {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Absolute time at which the in-flight block finishes serialising.
        at: SimTime,
    },
    /// The `from → to` connection no longer has a block in flight: cancel its
    /// completion event.
    Cancel {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
    },
}

/// A block waiting in a connection's queue.
#[derive(Debug, Clone, Copy)]
struct QueuedBlock {
    block: BlockId,
    bytes: u64,
    queued_at: SimTime,
    in_front: u32,
    idle_gap: f64,
}

/// The block currently being serialised onto the wire.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    block: BlockId,
    bytes: u64,
    bytes_left: f64,
    queued_at: SimTime,
    started_at: SimTime,
    in_front: u32,
    idle_gap: f64,
}

/// State of one directional sender→receiver data connection.
#[derive(Debug)]
pub struct Connection {
    queue: VecDeque<QueuedBlock>,
    inflight: Option<InFlight>,
    /// Current service rate in bytes/second (meaningful while active).
    rate: BytesPerSec,
    /// The flow's own TCP ceiling as of the last solve that included it
    /// (the fast path of [`Network::on_block_done`] compares against it).
    last_cap: f64,
    /// The links this flow registered on when it became active (`None` while
    /// idle). Deregistration and the solver use *these*, never a fresh
    /// `links_on_path` lookup, so a topology remap while the flow is in
    /// flight cannot desynchronise the per-link tables: the flow keeps its
    /// registered path until it next goes idle.
    registered: Option<[LinkId; 3]>,
    /// Last instant at which `bytes_left` was brought up to date.
    last_progress: SimTime,
    /// Total bytes whose transmission has completed (drives slow start).
    bytes_acked: u64,
    /// When the connection last became idle.
    idle_since: SimTime,
}

impl Connection {
    fn new(now: SimTime) -> Self {
        Connection {
            queue: VecDeque::new(),
            inflight: None,
            rate: MIN_RATE,
            last_cap: f64::INFINITY,
            registered: None,
            last_progress: now,
            bytes_acked: 0,
            idle_since: now,
        }
    }

    /// True when a block is being serialised.
    pub fn is_active(&self) -> bool {
        self.inflight.is_some()
    }

    /// Number of blocks queued or in flight on this connection.
    pub fn pending_blocks(&self) -> usize {
        self.queue.len() + usize::from(self.inflight.is_some())
    }

    /// Bytes queued or in flight on this connection.
    pub fn pending_bytes(&self) -> u64 {
        let inflight = self
            .inflight
            .map(|f| f.bytes_left.ceil() as u64)
            .unwrap_or(0);
        inflight + self.queue.iter().map(|q| q.bytes).sum::<u64>()
    }

    /// Current service rate estimate in bytes/second.
    pub fn current_rate(&self) -> BytesPerSec {
        self.rate
    }

    /// Total bytes delivered on this connection so far.
    pub fn bytes_acked(&self) -> u64 {
        self.bytes_acked
    }
}

/// Per-node traffic accounting maintained by the emulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeTraffic {
    /// Bytes of control messages sent.
    pub control_bytes_out: u64,
    /// Bytes of control messages received.
    pub control_bytes_in: u64,
    /// Number of control messages sent.
    pub control_msgs_out: u64,
    /// Data bytes handed to the receiving protocol.
    pub data_bytes_in: u64,
    /// Data bytes whose serialisation completed at this sender.
    pub data_bytes_out: u64,
    /// Data blocks delivered to this node.
    pub blocks_in: u64,
    /// Data blocks sent by this node.
    pub blocks_out: u64,
}

/// The emulated network: topology + live connection state + traffic counters
/// + the max-min fair rate assignment over the link graph.
#[derive(Debug)]
pub struct Network {
    topo: Topology,
    conns: HashMap<(NodeId, NodeId), Connection>,
    /// Flows (connections with a block in flight) crossing each link, indexed
    /// by [`LinkId`]. Ordered sets keep every solve deterministic.
    link_flows: Vec<BTreeSet<(NodeId, NodeId)>>,
    /// Sum of the current rates of the flows registered on each link —
    /// maintained incrementally so the admission/removal fast paths can test
    /// saturation without a solve.
    link_usage: Vec<f64>,
    /// Background (cross-traffic) occupancy per link, in bytes/second.
    cross: Vec<BytesPerSec>,
    traffic: Vec<NodeTraffic>,
    /// Scratch set for flow-dedup during component discovery (reused across
    /// solves; cleared, never shrunk).
    seen_flows: HashSet<(NodeId, NodeId)>,
    /// Scratch per-link visit marks for component discovery, versioned by
    /// `mark_stamp` so the vector never needs clearing.
    link_mark: Vec<u64>,
    /// Component-local index of each marked link (valid while its mark
    /// carries the current stamp).
    link_local: Vec<u32>,
    mark_stamp: u64,
    /// Reusable solver buffers (cleared per solve, capacity kept), so
    /// steady-state repricing does not allocate.
    scratch: SolverScratch,
}

/// The solver's working buffers, reused across solves.
#[derive(Debug, Default)]
struct SolverScratch {
    /// Links of the component under solve, in discovery order (= local ids).
    comp_links: Vec<LinkId>,
    /// Flows of the component, in discovery order.
    flows: Vec<(NodeId, NodeId)>,
    /// Component-local link ids of each flow's path.
    flow_links: Vec<[usize; 3]>,
    /// Each flow's own TCP ceiling.
    caps: Vec<f64>,
    /// Per-local-link solver state.
    links: Vec<LinkState>,
    /// Per-local-link flow adjacency (indices into `flows`).
    link_members: Vec<Vec<usize>>,
    /// Solver outputs.
    rates: Vec<f64>,
    frozen: Vec<bool>,
}

impl Network {
    /// Wraps a topology with empty connection state.
    pub fn new(topo: Topology) -> Self {
        let n = topo.len();
        let links = topo.num_links();
        Network {
            topo,
            conns: HashMap::new(),
            link_flows: vec![BTreeSet::new(); links],
            link_usage: vec![0.0; links],
            cross: vec![0.0; links],
            traffic: vec![NodeTraffic::default(); n],
            seen_flows: HashSet::new(),
            link_mark: vec![0; links],
            link_local: vec![0; links],
            mark_stamp: 0,
            scratch: SolverScratch::default(),
        }
    }

    /// The underlying topology (read-only).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Mutable topology access, used by dynamic-bandwidth scenarios. Callers
    /// must follow up with [`Network::reprice_paths`] for affected pairs (or
    /// [`Network::reprice_all`] after wholesale rewrites).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// Number of emulated hosts.
    pub fn len(&self) -> usize {
        self.topo.len()
    }

    /// Returns true if the network has no hosts (never for valid topologies).
    pub fn is_empty(&self) -> bool {
        self.topo.is_empty()
    }

    /// Traffic counters for `node`.
    pub fn traffic(&self, node: NodeId) -> &NodeTraffic {
        &self.traffic[node.index()]
    }

    /// Connection state for `from → to`, if one exists.
    pub fn connection(&self, from: NodeId, to: NodeId) -> Option<&Connection> {
        self.conns.get(&(from, to))
    }

    /// Number of blocks queued + in flight from `from` to `to`.
    pub fn pending_blocks(&self, from: NodeId, to: NodeId) -> usize {
        self.connection(from, to)
            .map_or(0, Connection::pending_blocks)
    }

    /// Background cross-traffic occupancy of `link`, in bytes/second.
    pub fn cross_traffic(&self, link: LinkId) -> BytesPerSec {
        self.cross[link.index()]
    }

    /// Sets the background cross-traffic occupancy of the core link carrying
    /// `via.0 → via.1` to `rate` bytes/second and re-prices the flows the
    /// change can affect. Cross traffic is unresponsive (CBR-like): it takes
    /// `rate` off the link's usable capacity regardless of contention.
    pub fn set_cross_traffic(
        &mut self,
        now: SimTime,
        via: (NodeId, NodeId),
        rate: BytesPerSec,
    ) -> Vec<ConnUpdate> {
        self.sync_link_tables();
        let link = self.topo.core_link(via.0, via.1);
        self.cross[link.index()] = rate.max(0.0);
        self.resolve(now, &[link], None)
    }

    /// Keeps the per-link tables sized to the topology, which can gain links
    /// through [`Topology::share_core`] after the network was built. Flows
    /// already in flight across a remap keep their *registered* links until
    /// they next go idle (see [`Connection::registered`]), so a late remap
    /// changes routing for future activations without corrupting state.
    fn sync_link_tables(&mut self) {
        let links = self.topo.num_links();
        if self.link_flows.len() < links {
            self.link_flows.resize_with(links, BTreeSet::new);
            self.link_usage.resize(links, 0.0);
            self.cross.resize(links, 0.0);
            self.link_mark.resize(links, 0);
            self.link_local.resize(links, 0);
        }
    }

    /// Delivery delay for a `bytes`-sized control message from `from` to
    /// `to`, including an occasional loss-induced retransmission penalty.
    /// Control traffic is tiny next to the data flows, so it is priced off
    /// raw link capacities rather than fed through the fluid solver.
    pub fn control_delay<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        from: NodeId,
        to: NodeId,
        bytes: usize,
    ) -> SimDuration {
        let prop = self.topo.one_way_delay(from, to);
        let path = self.topo.path(from, to);
        let access = self
            .topo
            .node(from)
            .up
            .min(self.topo.node(to).down)
            .max(1.0);
        let serialisation = SimDuration::from_secs_f64(bytes as f64 / access.min(path.bw.max(1.0)));
        // A lost control packet waits for a TCP retransmission: roughly one
        // RTT plus a minimum RTO floor.
        let mut penalty = SimDuration::ZERO;
        if path.loss > 0.0 && rng.gen_bool(path.loss.min(0.5)) {
            penalty = self.topo.rtt(from, to) + SimDuration::from_millis(200);
        }
        self.traffic[from.index()].control_bytes_out += bytes as u64;
        self.traffic[from.index()].control_msgs_out += 1;
        self.traffic[to.index()].control_bytes_in += bytes as u64;
        prop + serialisation + penalty
    }

    /// One-way propagation delay used for data-block delivery after the
    /// block finishes serialising at the sender.
    pub fn data_delivery_delay(&self, from: NodeId, to: NodeId) -> SimDuration {
        self.topo.one_way_delay(from, to)
    }

    /// Enqueues a block on the `from → to` connection, creating the
    /// connection if needed. Returns the completion-event updates caused by
    /// rate changes.
    pub fn queue_block(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        block: BlockId,
        bytes: u64,
    ) -> Vec<ConnUpdate> {
        assert!(from != to, "a node cannot stream blocks to itself");
        let conn = self
            .conns
            .entry((from, to))
            .or_insert_with(|| Connection::new(now));
        let in_front = conn.pending_blocks() as u32;
        let idle_gap = if conn.is_active() || !conn.queue.is_empty() {
            0.0
        } else {
            (now - conn.idle_since).as_secs_f64()
        };
        conn.queue.push_back(QueuedBlock {
            block,
            bytes,
            queued_at: now,
            in_front,
            idle_gap,
        });
        if conn.is_active() {
            Vec::new()
        } else {
            self.start_next(now, from, to);
            self.mark_active(now, from, to)
        }
    }

    /// Pops the next queued block into the in-flight slot. The caller is
    /// responsible for activation bookkeeping and rescheduling.
    fn start_next(&mut self, now: SimTime, from: NodeId, to: NodeId) {
        let conn = self.conns.get_mut(&(from, to)).expect("connection exists");
        debug_assert!(conn.inflight.is_none());
        if let Some(q) = conn.queue.pop_front() {
            conn.inflight = Some(InFlight {
                block: q.block,
                bytes: q.bytes,
                bytes_left: q.bytes as f64,
                queued_at: q.queued_at,
                started_at: now,
                in_front: q.in_front,
                idle_gap: q.idle_gap,
            });
            conn.last_progress = now;
        }
    }

    /// Handles the completion event for connection `from → to`. With the
    /// cancellable queue there is at most one live completion event per
    /// connection, so a firing event always refers to the current in-flight
    /// block; `None` is only returned defensively if the connection does not
    /// exist or has nothing in flight (which indicates a driver bug).
    pub fn on_block_done(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
    ) -> Option<(CompletedBlock, Vec<ConnUpdate>)> {
        let conn = self.conns.get_mut(&(from, to))?;
        let fl = conn.inflight.take()?;
        conn.bytes_acked += fl.bytes;
        conn.last_progress = now;
        let wasted = if fl.idle_gap > 0.0 {
            -fl.idle_gap
        } else {
            (fl.started_at - fl.queued_at).as_secs_f64()
        };
        let completed = CompletedBlock {
            from,
            to,
            block: fl.block,
            bytes: fl.bytes,
            in_front: fl.in_front,
            wasted,
            queued_at: fl.queued_at,
        };
        self.traffic[from.index()].data_bytes_out += fl.bytes;
        self.traffic[from.index()].blocks_out += 1;

        let has_more = !self.conns[&(from, to)].queue.is_empty();
        let updates = if has_more {
            // The connection stays active; the only solver input that moved
            // is this flow's own ceiling (slow start grew). If the ceiling
            // value is unchanged (a mature, Mathis-limited flow) or was not
            // binding anyway (link-limited flow, monotone ceiling growth),
            // the global allocation is untouched — schedule the fresh
            // in-flight block at the current rate without a solve.
            self.start_next(now, from, to);
            let new_cap = self.flow_cap(from, to, self.conns[&(from, to)].bytes_acked);
            let conn = self.conns.get_mut(&(from, to)).expect("connection exists");
            let cap_unchanged = new_cap == conn.last_cap;
            let cap_not_binding =
                new_cap >= conn.last_cap && conn.rate < conn.last_cap * (1.0 - RATE_EPSILON);
            if cap_unchanged || cap_not_binding {
                conn.last_cap = new_cap;
                let fl = conn.inflight.as_ref().expect("just started");
                let finish = now + SimDuration::from_secs_f64(fl.bytes_left / conn.rate);
                vec![ConnUpdate::Schedule {
                    from,
                    to,
                    at: finish,
                }]
            } else {
                // The ceiling moved while binding — re-solve the component,
                // which can ripple to every flow sharing a link with this one.
                let links = self.topo.links_on_path(from, to);
                self.resolve(now, &links, Some((from, to)))
            }
        } else {
            let conn = self.conns.get_mut(&(from, to)).expect("connection exists");
            conn.idle_since = now;
            // The fired event was the connection's only live one, so there is
            // nothing to cancel; the freed capacity re-prices the neighbours.
            self.mark_idle(now, from, to)
        };
        Some((completed, updates))
    }

    /// Records the receiver-side arrival of a block (traffic accounting).
    pub fn on_block_delivered(&mut self, to: NodeId, bytes: u64) {
        self.traffic[to.index()].data_bytes_in += bytes;
        self.traffic[to.index()].blocks_in += 1;
    }

    /// Closes the `from → to` connection, dropping queued and in-flight
    /// blocks. Returns a cancellation for this connection's completion event
    /// (if one was live) plus updates for the flows whose shares changed.
    pub fn close_connection(&mut self, now: SimTime, from: NodeId, to: NodeId) -> Vec<ConnUpdate> {
        let Some(conn) = self.conns.get_mut(&(from, to)) else {
            return Vec::new();
        };
        let was_active = conn.is_active();
        conn.queue.clear();
        conn.inflight = None;
        if was_active {
            conn.idle_since = now;
            let mut updates = vec![ConnUpdate::Cancel { from, to }];
            updates.extend(self.mark_idle(now, from, to));
            updates
        } else {
            Vec::new()
        }
    }

    /// Tears down every connection that touches `node` in either direction
    /// (used when a node leaves or crashes). Returns the aggregated
    /// completion-event updates.
    pub fn close_all_for(&mut self, now: SimTime, node: NodeId) -> Vec<ConnUpdate> {
        let mut keys: Vec<(NodeId, NodeId)> = self
            .conns
            .keys()
            .filter(|&&(a, b)| a == node || b == node)
            .copied()
            .collect();
        keys.sort_unstable_by_key(|(a, b)| (a.0, b.0));
        let mut updates = Vec::new();
        for (a, b) in keys {
            updates.extend(self.close_connection(now, a, b));
        }
        updates
    }

    /// Re-prices the flows affected by capacity changes on the core links
    /// carrying the given ordered pairs (used after a scenario rewrites link
    /// characteristics).
    pub fn reprice_paths(&mut self, now: SimTime, pairs: &[(NodeId, NodeId)]) -> Vec<ConnUpdate> {
        self.sync_link_tables();
        let mut links: Vec<LinkId> = pairs
            .iter()
            .map(|&(a, b)| self.topo.core_link(a, b))
            .collect();
        links.sort_unstable();
        links.dedup();
        self.resolve(now, &links, None)
    }

    /// Re-solves the whole allocation from scratch, returning updates for
    /// every flow whose rate changed. With correct incremental repricing this
    /// is a no-op (the `fairness_oracle` property test asserts exactly that);
    /// it exists for callers that rewrite the topology wholesale.
    pub fn reprice_all(&mut self, now: SimTime) -> Vec<ConnUpdate> {
        self.sync_link_tables();
        let links: Vec<LinkId> = (0..self.link_flows.len() as u32)
            .map(LinkId)
            .filter(|l| !self.link_flows[l.index()].is_empty())
            .collect();
        self.resolve(now, &links, None)
    }

    /// Usable capacity of `link`: loss-discounted, minus cross traffic.
    fn usable(&self, link: LinkId) -> f64 {
        (self.topo.link_capacity(link) - self.cross[link.index()]).max(MIN_RATE)
    }

    /// Registers `from → to` as an active flow and re-prices what its
    /// arrival can affect.
    ///
    /// **Admission fast path:** if the flow's own ceiling fits inside the
    /// residual slack of every link on its path, it is admitted at the
    /// ceiling without a solve — the previous allocation plus the new
    /// ceiling-capped flow is feasible, no previously unsaturated link
    /// saturates, and every flow keeps its max-min certificate (its own
    /// ceiling, or a saturated link the newcomer does not relieve), so the
    /// extended allocation *is* the new max-min optimum. This is the common
    /// case in a dissemination mesh (fresh slow-start flows on underloaded
    /// links) and keeps steady-state activation O(1).
    fn mark_active(&mut self, now: SimTime, from: NodeId, to: NodeId) -> Vec<ConnUpdate> {
        self.sync_link_tables();
        let links = self.topo.links_on_path(from, to);
        for l in links {
            self.link_flows[l.index()].insert((from, to));
        }
        let acked = self.conns[&(from, to)].bytes_acked;
        let cap = self.flow_cap(from, to, acked);
        let fits = links
            .iter()
            .all(|&l| self.link_usage[l.index()] + cap <= self.usable(l) * (1.0 - RATE_EPSILON));
        let conn = self.conns.get_mut(&(from, to)).expect("connection exists");
        debug_assert!(conn.registered.is_none(), "double activation");
        conn.registered = Some(links);
        if fits {
            conn.rate = cap.max(MIN_RATE);
            conn.last_cap = cap;
        }
        // The usage invariant — `link_usage` is the rate sum of the
        // *registered* flows — must hold before the solver runs, because the
        // solver accounts rate changes as deltas against it.
        for l in links {
            self.link_usage[l.index()] += conn.rate;
        }
        if fits {
            let fl = conn.inflight.as_ref().expect("just started");
            let finish = now + SimDuration::from_secs_f64(fl.bytes_left / conn.rate);
            return vec![ConnUpdate::Schedule {
                from,
                to,
                at: finish,
            }];
        }
        self.resolve(now, &links, Some((from, to)))
    }

    /// Deregisters `from → to` (using the links it registered on, so a
    /// topology remap mid-flight cannot desynchronise the tables) and
    /// re-prices what its departure can affect.
    ///
    /// **Removal fast path:** if the departing flow was pinned at its own
    /// ceiling and none of its links was saturated, no surviving flow's
    /// bottleneck certificate involved those links — removal only adds slack
    /// to links that were not binding anyone, so the remaining allocation is
    /// still the max-min optimum and no solve is needed.
    fn mark_idle(&mut self, now: SimTime, from: NodeId, to: NodeId) -> Vec<ConnUpdate> {
        let conn = self.conns.get_mut(&(from, to)).expect("connection exists");
        let links = conn.registered.take().expect("idle flow was registered");
        let rate = conn.rate;
        let ceiling_capped = rate >= conn.last_cap * (1.0 - RATE_EPSILON);
        for l in links {
            let removed = self.link_flows[l.index()].remove(&(from, to));
            debug_assert!(removed, "idle flow was not registered on its links");
            self.link_usage[l.index()] = (self.link_usage[l.index()] - rate).max(0.0);
        }
        let all_unsaturated = links.iter().all(|&l| {
            // Usage *before* this removal, against the current capacity.
            self.link_usage[l.index()] + rate <= self.usable(l) * (1.0 - RATE_EPSILON)
        });
        if ceiling_capped && all_unsaturated {
            return Vec::new();
        }
        self.resolve(now, &links, None)
    }

    /// The per-flow TCP ceiling of `from → to`: the Mathis loss limit and the
    /// slow-start window limit (the shared links themselves are constraints
    /// of the solver, not of the individual flow).
    fn flow_cap(&self, from: NodeId, to: NodeId, bytes_acked: u64) -> f64 {
        let path = crate::tcp::TcpPath {
            bottleneck: f64::INFINITY,
            rtt: self.topo.rtt(from, to),
            loss: self.topo.path(from, to).loss,
        };
        path.mathis_cap().min(path.slow_start_cap(bytes_acked))
    }

    /// Re-solves the max-min allocation of every connected component of the
    /// flow–link graph reachable from `seed_links`, and converts the rate
    /// changes into completion-event updates. `force` names a flow that must
    /// receive a `Schedule` even if its rate is unchanged (a freshly started
    /// in-flight block has no live event yet).
    fn resolve(
        &mut self,
        now: SimTime,
        seed_links: &[LinkId],
        force: Option<(NodeId, NodeId)>,
    ) -> Vec<ConnUpdate> {
        // ---- Component discovery: BFS over the flow–link bipartite graph.
        self.mark_stamp += 1;
        let stamp = self.mark_stamp;
        self.seen_flows.clear();
        let mut s = std::mem::take(&mut self.scratch);
        s.comp_links.clear();
        s.flows.clear();
        for &l in seed_links {
            if self.link_mark[l.index()] != stamp {
                self.link_mark[l.index()] = stamp;
                self.link_local[l.index()] = s.comp_links.len() as u32;
                s.comp_links.push(l);
            }
        }
        let mut qi = 0;
        while qi < s.comp_links.len() {
            let l = s.comp_links[qi];
            qi += 1;
            for &flow in &self.link_flows[l.index()] {
                if self.seen_flows.insert(flow) {
                    s.flows.push(flow);
                    let regs = self.conns[&flow]
                        .registered
                        .expect("active flow is registered");
                    for nl in regs {
                        if self.link_mark[nl.index()] != stamp {
                            self.link_mark[nl.index()] = stamp;
                            self.link_local[nl.index()] = s.comp_links.len() as u32;
                            s.comp_links.push(nl);
                        }
                    }
                }
            }
        }
        if s.flows.is_empty() {
            self.scratch = s;
            return Vec::new();
        }

        // ---- Solver inputs: local link states, adjacency, per-flow caps.
        s.links.clear();
        if s.link_members.len() < s.comp_links.len() {
            s.link_members.resize_with(s.comp_links.len(), Vec::new);
        }
        for (li, &l) in s.comp_links.iter().enumerate() {
            s.links.push(LinkState {
                capacity: self.usable(l),
                unfrozen: 0,
                frozen_usage: 0.0,
            });
            s.link_members[li].clear();
        }
        s.flow_links.clear();
        s.caps.clear();
        for (i, &(from, to)) in s.flows.iter().enumerate() {
            let conn = &self.conns[&(from, to)];
            let ls = conn
                .registered
                .expect("active flow is registered")
                .map(|l| self.link_local[l.index()] as usize);
            for &li in &ls {
                s.links[li].unfrozen += 1;
                s.link_members[li].push(i);
            }
            s.flow_links.push(ls);
            s.caps.push(self.flow_cap(from, to, conn.bytes_acked));
        }
        max_min_rates(
            &s.caps,
            &s.flow_links,
            &mut s.links,
            &s.link_members,
            &mut s.rates,
            &mut s.frozen,
        );

        // ---- Apply: account progress and emit updates for changed flows.
        let mut out = Vec::new();
        for (i, &(from, to)) in s.flows.iter().enumerate() {
            let new_rate = s.rates[i].max(MIN_RATE);
            let conn = self.conns.get_mut(&(from, to)).expect("active flow");
            conn.last_cap = s.caps[i];
            let changed = (new_rate - conn.rate).abs() > conn.rate * RATE_EPSILON;
            if changed || force == Some((from, to)) {
                let fl = conn.inflight.as_mut().expect("active flow has inflight");
                let elapsed = (now - conn.last_progress).as_secs_f64();
                fl.bytes_left = (fl.bytes_left - elapsed * conn.rate).max(0.0);
                conn.last_progress = now;
                let old_rate = conn.rate;
                conn.rate = new_rate;
                for l in conn.registered.expect("active flow is registered") {
                    self.link_usage[l.index()] =
                        (self.link_usage[l.index()] + new_rate - old_rate).max(0.0);
                }
                let finish = now + SimDuration::from_secs_f64(fl.bytes_left / conn.rate);
                out.push(ConnUpdate::Schedule {
                    from,
                    to,
                    at: finish,
                });
            }
        }
        self.scratch = s;
        out
    }
}

/// Working state of one link during progressive filling.
#[derive(Debug)]
struct LinkState {
    /// Usable capacity (loss-discounted, minus cross traffic).
    capacity: f64,
    /// Number of not-yet-frozen flows crossing the link.
    unfrozen: u32,
    /// Capacity consumed by flows already frozen on this link.
    frozen_usage: f64,
}

impl LinkState {
    /// The water level at which this link saturates given its current frozen
    /// usage: `frozen_usage + unfrozen * level == capacity`.
    fn saturation_level(&self) -> f64 {
        debug_assert!(self.unfrozen > 0);
        (self.capacity - self.frozen_usage) / f64::from(self.unfrozen)
    }
}

/// Progressive filling: raises one common water level over all flows;
/// a flow freezes at its own ceiling (`caps`) or at the level where a link
/// on its path saturates. Writes the max-min fair rate of each flow into
/// `rates` (reused caller buffers; `link_members` lists each link's flows).
///
/// Deterministic by construction — plain `f64` comparisons over inputs whose
/// order the caller fixed — and O(rounds × (flows + links)) with at least one
/// flow frozen per round.
fn max_min_rates(
    caps: &[f64],
    flow_links: &[[usize; 3]],
    links: &mut [LinkState],
    link_members: &[Vec<usize>],
    rates: &mut Vec<f64>,
    frozen: &mut Vec<bool>,
) {
    let n = caps.len();
    rates.clear();
    rates.resize(n, 0.0);
    frozen.clear();
    frozen.resize(n, false);
    let mut remaining = n;
    let mut level = 0.0f64;

    // Freezing helper as a closure is blocked by borrow rules; a macro keeps
    // the link bookkeeping in one place instead.
    macro_rules! freeze {
        ($i:expr, $rate:expr) => {{
            let i = $i;
            let r = $rate;
            rates[i] = r;
            frozen[i] = true;
            remaining -= 1;
            for &li in &flow_links[i] {
                links[li].unfrozen -= 1;
                links[li].frozen_usage += r;
            }
        }};
    }

    while remaining > 0 {
        // The next stopping point: the lowest flow ceiling or link
        // saturation level at or above the current water level.
        let mut next = f64::INFINITY;
        for i in 0..n {
            if !frozen[i] {
                next = next.min(caps[i]);
            }
        }
        for l in links.iter() {
            if l.unfrozen > 0 {
                next = next.min(l.saturation_level());
            }
        }
        level = next.max(level);

        let mut any = false;
        // Flows that hit their own ceiling freeze at the ceiling.
        for i in 0..n {
            if !frozen[i] && caps[i] <= level {
                freeze!(i, caps[i]);
                any = true;
            }
        }
        // Links that saturate at (or, through floating-point drift, just
        // below) the level freeze their remaining flows at the level. One
        // saturation can lower another link's level, so sweep to fixpoint.
        loop {
            let mut hit = false;
            for li in 0..links.len() {
                if links[li].unfrozen == 0 {
                    continue;
                }
                if links[li].saturation_level() <= level * (1.0 + 1e-12) {
                    for &i in &link_members[li] {
                        if !frozen[i] {
                            freeze!(i, level);
                        }
                    }
                    hit = true;
                    any = true;
                }
            }
            if !hit {
                break;
            }
        }
        if !any {
            // Unreachable by construction (the level was chosen as an
            // achieved minimum), but guarantees termination outright.
            for i in 0..n {
                if !frozen[i] {
                    freeze!(i, level);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{constrained_access, shared_core_mesh, NodeSpec, PathSpec};
    use crate::units::mbps;
    use desim::RngFactory;

    fn two_node_topo(core_mbps: f64, access_mbps: f64) -> Topology {
        let node = NodeSpec {
            up: mbps(access_mbps),
            down: mbps(access_mbps),
            access_delay: SimDuration::from_millis(1),
        };
        let path = PathSpec {
            bw: mbps(core_mbps),
            delay: SimDuration::from_millis(10),
            loss: 0.0,
        };
        Topology::new(vec![node; 2], vec![vec![path; 2]; 2])
    }

    /// Extracts the completion time of the `Schedule` update for `from → to`.
    fn sched_at(updates: &[ConnUpdate], from: NodeId, to: NodeId) -> SimTime {
        updates
            .iter()
            .find_map(|u| match u {
                ConnUpdate::Schedule { from: f, to: t, at } if (*f, *t) == (from, to) => Some(*at),
                _ => None,
            })
            .expect("a Schedule update for the pair")
    }

    #[test]
    fn single_block_completes_at_expected_rate() {
        let mut net = Network::new(two_node_topo(2.0, 6.0));
        let now = SimTime::ZERO;
        let r = net.queue_block(now, NodeId(0), NodeId(1), BlockId(0), 250_000);
        assert_eq!(r.len(), 1);
        // Slow start dominates a fresh connection, so completion takes longer
        // than the raw 1-second serialisation at 2 Mbps (250 KB / 250 KB/s).
        let at = sched_at(&r, NodeId(0), NodeId(1));
        let finish = at.as_secs_f64();
        assert!(
            finish > 1.0,
            "finish {finish} should exceed the raw serialisation time"
        );
        assert!(finish < 10.0, "finish {finish} unreasonably late");
        let (done, _) = net
            .on_block_done(at, NodeId(0), NodeId(1))
            .expect("block in flight");
        assert_eq!(done.block, BlockId(0));
        assert_eq!(done.bytes, 250_000);
        assert_eq!(done.in_front, 0);
        assert!(
            done.wasted <= 0.0,
            "first block on an idle connection has idle-gap wasted time"
        );
    }

    #[test]
    fn completion_without_inflight_is_rejected() {
        let mut net = Network::new(two_node_topo(2.0, 6.0));
        // No connection at all.
        assert!(net
            .on_block_done(SimTime::ZERO, NodeId(0), NodeId(1))
            .is_none());
        let r = net.queue_block(SimTime::ZERO, NodeId(0), NodeId(1), BlockId(0), 16_384);
        // Queueing a second block on an active connection produces no update:
        // the live completion event is untouched.
        let r2 = net.queue_block(SimTime::ZERO, NodeId(0), NodeId(1), BlockId(1), 16_384);
        assert!(r2.is_empty());
        // Draining both blocks empties the connection; a further completion
        // has nothing in flight and is rejected.
        let at = sched_at(&r, NodeId(0), NodeId(1));
        let (_, u1) = net.on_block_done(at, NodeId(0), NodeId(1)).unwrap();
        let at1 = sched_at(&u1, NodeId(0), NodeId(1));
        let (_, _) = net.on_block_done(at1, NodeId(0), NodeId(1)).unwrap();
        assert!(net.on_block_done(at1, NodeId(0), NodeId(1)).is_none());
    }

    #[test]
    fn queued_blocks_report_in_front_and_wait() {
        let mut net = Network::new(two_node_topo(2.0, 6.0));
        let t0 = SimTime::ZERO;
        let r = net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 16_384);
        net.queue_block(t0, NodeId(0), NodeId(1), BlockId(1), 16_384);
        net.queue_block(t0, NodeId(0), NodeId(1), BlockId(2), 16_384);
        assert_eq!(net.pending_blocks(NodeId(0), NodeId(1)), 3);

        // Complete the first block.
        let at0 = sched_at(&r, NodeId(0), NodeId(1));
        let (b0, r1) = net.on_block_done(at0, NodeId(0), NodeId(1)).unwrap();
        assert_eq!(b0.in_front, 0);
        // The second block starts immediately and reports one block in front.
        let at1 = sched_at(&r1, NodeId(0), NodeId(1));
        let (b1, r2) = net.on_block_done(at1, NodeId(0), NodeId(1)).unwrap();
        assert_eq!(b1.block, BlockId(1));
        assert_eq!(b1.in_front, 1);
        assert!(
            b1.wasted > 0.0,
            "queued block should report positive waiting time"
        );
        let at2 = sched_at(&r2, NodeId(0), NodeId(1));
        let (b2, _) = net.on_block_done(at2, NodeId(0), NodeId(1)).unwrap();
        assert_eq!(b2.in_front, 2);
    }

    #[test]
    fn concurrent_connections_share_access_link() {
        // Constrained access topology: 800 Kbps uplink, 10 Mbps core.
        let mut net = Network::new(constrained_access(3));
        let t0 = SimTime::ZERO;
        let r1 = net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 100_000);
        let single_rate = net.connection(NodeId(0), NodeId(1)).unwrap().current_rate();
        let _r2 = net.queue_block(t0, NodeId(0), NodeId(2), BlockId(1), 100_000);
        let shared_rate = net.connection(NodeId(0), NodeId(1)).unwrap().current_rate();
        assert!(
            shared_rate < single_rate,
            "adding a second outgoing flow must reduce the first one's share"
        );
        assert!(sched_at(&r1, NodeId(0), NodeId(1)) > t0);
    }

    #[test]
    fn flows_contend_on_a_shared_core_link() {
        // Two disjoint sender/receiver pairs whose only common constraint is
        // the shared 2 Mbps core: under the old per-path model they would
        // not contend at all.
        let rng = RngFactory::new(1);
        let mut net = Network::new(shared_core_mesh(4, mbps(2.0), 0.0, &rng));
        let t0 = SimTime::ZERO;
        let big = 5_000_000;
        // Mature flow 0 → 1 past slow start by completing one large block.
        let r = net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), big);
        net.queue_block(t0, NodeId(0), NodeId(1), BlockId(1), big);
        let at = sched_at(&r, NodeId(0), NodeId(1));
        net.on_block_done(at, NodeId(0), NodeId(1)).unwrap();
        let alone = net.connection(NodeId(0), NodeId(1)).unwrap().current_rate();
        assert!(
            (alone - mbps(2.0)).abs() < 1.0,
            "a lone mature flow fills the shared core ({alone})"
        );
        let updates = net.queue_block(at, NodeId(2), NodeId(3), BlockId(2), big);
        // The established flow is re-priced by the newcomer's arrival.
        let _ = sched_at(&updates, NodeId(2), NodeId(3));
        let shared = net.connection(NodeId(0), NodeId(1)).unwrap().current_rate();
        assert!(
            shared < alone,
            "a disjoint pair crossing the same core link must steal share \
             (alone {alone}, shared {shared})"
        );
    }

    #[test]
    fn capped_flows_release_share_to_their_competitors() {
        // Max-min, not equal split: a flow held below the fair share by its
        // own ceiling (here: slow start on a fresh connection over a long
        // path) leaves the rest of the link to its competitor.
        let node = NodeSpec {
            up: 100_000.0,
            down: 100_000.0,
            access_delay: SimDuration::from_millis(2),
        };
        let path = PathSpec {
            bw: mbps(10.0),
            delay: SimDuration::from_millis(100),
            loss: 0.0,
        };
        let mut net = Network::new(Topology::new(vec![node; 3], vec![vec![path; 3]; 3]));
        let t0 = SimTime::ZERO;
        // Flow A: matured by completing a 100 KB block.
        let r = net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 100_000);
        net.queue_block(t0, NodeId(0), NodeId(1), BlockId(1), 400_000);
        let at = sched_at(&r, NodeId(0), NodeId(1));
        net.on_block_done(at, NodeId(0), NodeId(1)).unwrap();
        // Flow B: brand new at the same sender, window-limited over the
        // ~208 ms RTT (slow-start cap ≈ 21 KB/s, well below the 50 KB/s
        // fair share of the 100 KB/s uplink).
        net.queue_block(at, NodeId(0), NodeId(2), BlockId(2), 400_000);
        let a = net.connection(NodeId(0), NodeId(1)).unwrap().current_rate();
        let b = net.connection(NodeId(0), NodeId(2)).unwrap().current_rate();
        let uplink = 100_000.0;
        assert!(
            b < uplink / 2.0,
            "the slow-starting flow must sit below the fair share (b {b})"
        );
        assert!(
            a > uplink / 2.0 + 1.0,
            "the uncapped flow must claim the capped flow's leftover ({a})"
        );
        assert!(
            a + b <= uplink * (1.0 + 1e-6),
            "conservation on the uplink ({a} + {b})"
        );
    }

    #[test]
    fn cross_traffic_takes_core_capacity_and_returns_it() {
        let rng = RngFactory::new(2);
        let mut net = Network::new(shared_core_mesh(3, mbps(2.0), 0.0, &rng));
        let t0 = SimTime::ZERO;
        // Mature the flow past slow start by completing one large block.
        let r = net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 5_000_000);
        net.queue_block(t0, NodeId(0), NodeId(1), BlockId(1), 50_000_000);
        let t1 = sched_at(&r, NodeId(0), NodeId(1));
        net.on_block_done(t1, NodeId(0), NodeId(1)).unwrap();
        let clean = net.connection(NodeId(0), NodeId(1)).unwrap().current_rate();

        // A CBR stream occupying half the core.
        let updates = net.set_cross_traffic(t1, (NodeId(0), NodeId(1)), mbps(1.0));
        assert_eq!(updates.len(), 1, "the flow is re-priced: {updates:?}");
        let squeezed = net.connection(NodeId(0), NodeId(1)).unwrap().current_rate();
        assert!(
            squeezed < clean * 0.6,
            "cross traffic must take its share (clean {clean}, squeezed {squeezed})"
        );
        let link = net.topology().core_link(NodeId(0), NodeId(1));
        assert_eq!(net.cross_traffic(link), mbps(1.0));

        // Switching it off restores the rate.
        net.set_cross_traffic(t1, (NodeId(0), NodeId(1)), 0.0);
        let restored = net.connection(NodeId(0), NodeId(1)).unwrap().current_rate();
        assert!((restored - clean).abs() < clean * 1e-6);
    }

    #[test]
    fn share_core_mid_run_with_active_flows_is_safe() {
        // Regression: remapping pairs onto a shared link while a flow is in
        // flight must not desynchronise the per-link registration (debug
        // builds used to hit the mark_idle debug_assert; release builds left
        // a stale entry distorting every later solve). The in-flight flow
        // keeps its registered (old, dedicated) link until it goes idle;
        // new activations ride the shared link.
        let mut net = Network::new(constrained_access(4));
        let t0 = SimTime::ZERO;
        net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 200_000);
        // Remap both pairs onto one shared 2 Mbps link mid-flight.
        net.topology_mut().share_core(
            &[(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))],
            mbps(2.0),
            0.0,
        );
        // Completing the in-flight block (connection goes idle) must not
        // panic or corrupt state.
        let t1 = SimTime::from_secs_f64(10.0);
        net.on_block_done(t1, NodeId(0), NodeId(1))
            .expect("in flight");
        // Fresh activations are registered consistently on the new link and
        // a from-scratch solve agrees with the incremental state.
        net.queue_block(t1, NodeId(0), NodeId(1), BlockId(1), 200_000);
        net.queue_block(t1, NodeId(2), NodeId(3), BlockId(2), 200_000);
        let before: Vec<f64> = [(0u32, 1u32), (2, 3)]
            .iter()
            .map(|&(a, b)| net.connection(NodeId(a), NodeId(b)).unwrap().current_rate())
            .collect();
        net.reprice_all(t1);
        let after: Vec<f64> = [(0u32, 1u32), (2, 3)]
            .iter()
            .map(|&(a, b)| net.connection(NodeId(a), NodeId(b)).unwrap().current_rate())
            .collect();
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((a - b).abs() <= b * 1e-6, "incremental drift: {b} vs {a}");
        }
    }

    #[test]
    fn repricing_is_scoped_to_the_connected_component() {
        // Flows 0→1 and 2→3 share no link (dedicated cores, distinct access
        // links): starting/stopping one must not emit updates for the other.
        let mut net = Network::new(constrained_access(4));
        let t0 = SimTime::ZERO;
        net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 1_000_000);
        let updates = net.queue_block(t0, NodeId(2), NodeId(3), BlockId(1), 1_000_000);
        assert_eq!(
            updates.len(),
            1,
            "only the new flow's component is touched: {updates:?}"
        );
        let _ = sched_at(&updates, NodeId(2), NodeId(3));
        let updates = net.close_connection(SimTime::from_secs_f64(1.0), NodeId(2), NodeId(3));
        assert!(
            !updates
                .iter()
                .any(|u| matches!(u, ConnUpdate::Schedule { from, .. } if *from == NodeId(0))),
            "the disconnected flow must not be re-priced: {updates:?}"
        );
    }

    #[test]
    fn closing_a_connection_cancels_and_restores_shares() {
        let mut net = Network::new(constrained_access(3));
        let t0 = SimTime::ZERO;
        net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 1_000_000);
        net.queue_block(t0, NodeId(0), NodeId(2), BlockId(1), 1_000_000);
        let shared = net.connection(NodeId(0), NodeId(1)).unwrap().current_rate();
        let later = SimTime::from_secs_f64(1.0);
        let rs = net.close_connection(later, NodeId(0), NodeId(2));
        assert!(
            rs.contains(&ConnUpdate::Cancel {
                from: NodeId(0),
                to: NodeId(2)
            }),
            "closing an active connection cancels its completion event: {rs:?}"
        );
        // ... and re-prices the survivor.
        let _ = sched_at(&rs, NodeId(0), NodeId(1));
        let alone = net.connection(NodeId(0), NodeId(1)).unwrap().current_rate();
        assert!(alone > shared);
        assert_eq!(net.pending_blocks(NodeId(0), NodeId(2)), 0);
        // Closing an idle connection produces nothing.
        assert!(net.close_connection(later, NodeId(0), NodeId(2)).is_empty());
    }

    #[test]
    fn close_all_for_tears_down_both_directions() {
        let mut net = Network::new(constrained_access(4));
        let t0 = SimTime::ZERO;
        net.queue_block(t0, NodeId(1), NodeId(0), BlockId(0), 500_000);
        net.queue_block(t0, NodeId(1), NodeId(2), BlockId(1), 500_000);
        net.queue_block(t0, NodeId(3), NodeId(1), BlockId(2), 500_000);
        net.queue_block(t0, NodeId(0), NodeId(2), BlockId(3), 500_000);
        let updates = net.close_all_for(SimTime::from_secs_f64(0.5), NodeId(1));
        let cancels: Vec<_> = updates
            .iter()
            .filter(|u| matches!(u, ConnUpdate::Cancel { .. }))
            .collect();
        assert_eq!(
            cancels.len(),
            3,
            "all three connections touching node 1: {updates:?}"
        );
        assert_eq!(net.pending_blocks(NodeId(1), NodeId(0)), 0);
        assert_eq!(net.pending_blocks(NodeId(1), NodeId(2)), 0);
        assert_eq!(net.pending_blocks(NodeId(3), NodeId(1)), 0);
        // Unrelated connections keep flowing.
        assert_eq!(net.pending_blocks(NodeId(0), NodeId(2)), 1);
    }

    #[test]
    fn reprice_paths_after_bandwidth_change() {
        let mut net = Network::new(two_node_topo(2.0, 6.0));
        let t0 = SimTime::ZERO;
        let r = net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 2_000_000);
        let original_finish = sched_at(&r, NodeId(0), NodeId(1));
        // Halve the core bandwidth at t = 1s.
        let t1 = SimTime::from_secs_f64(1.0);
        net.topology_mut()
            .set_core_bw(NodeId(0), NodeId(1), mbps(1.0));
        let rs = net.reprice_paths(t1, &[(NodeId(0), NodeId(1))]);
        assert_eq!(rs.len(), 1);
        assert!(
            sched_at(&rs, NodeId(0), NodeId(1)) > original_finish,
            "less bandwidth must push completion later"
        );
    }

    #[test]
    fn traffic_counters_accumulate() {
        let mut net = Network::new(two_node_topo(2.0, 6.0));
        let mut rng = RngFactory::new(1).stream("ctl");
        let d = net.control_delay(&mut rng, NodeId(0), NodeId(1), 100);
        assert!(d > SimDuration::ZERO);
        assert_eq!(net.traffic(NodeId(0)).control_bytes_out, 100);
        assert_eq!(net.traffic(NodeId(1)).control_bytes_in, 100);

        let r = net.queue_block(SimTime::ZERO, NodeId(0), NodeId(1), BlockId(0), 500);
        let at = sched_at(&r, NodeId(0), NodeId(1));
        net.on_block_done(at, NodeId(0), NodeId(1)).unwrap();
        net.on_block_delivered(NodeId(1), 500);
        assert_eq!(net.traffic(NodeId(0)).data_bytes_out, 500);
        assert_eq!(net.traffic(NodeId(1)).data_bytes_in, 500);
        assert_eq!(net.traffic(NodeId(1)).blocks_in, 1);
    }

    #[test]
    #[should_panic(expected = "cannot stream blocks to itself")]
    fn self_connection_rejected() {
        let mut net = Network::new(two_node_topo(2.0, 6.0));
        net.queue_block(SimTime::ZERO, NodeId(0), NodeId(0), BlockId(0), 10);
    }

    #[test]
    fn progressive_filling_matches_hand_solved_example() {
        // The worked 3-flow example of docs/NETWORK_MODEL.md: links L1 (cap
        // 10, flows A+B), L2 (cap 6, flows B+C); C capped at 2.
        // Level 2: C freezes at its cap. Level 4: L2 saturates (2 + 4 = 6),
        // B freezes at 4. Level 6: L1 saturates (4 + 6 = 10), A freezes at 6.
        let caps = [f64::INFINITY, f64::INFINITY, 2.0];
        // Give every flow three link slots (the solver's path shape) by
        // padding with per-flow private links of ample capacity.
        let flow_links = [[0, 2, 3], [0, 1, 4], [1, 2, 5]];
        let mut links = vec![
            LinkState {
                capacity: 10.0,
                unfrozen: 2,
                frozen_usage: 0.0,
            },
            LinkState {
                capacity: 6.0,
                unfrozen: 2,
                frozen_usage: 0.0,
            },
            LinkState {
                capacity: 100.0,
                unfrozen: 2,
                frozen_usage: 0.0,
            },
            LinkState {
                capacity: 100.0,
                unfrozen: 1,
                frozen_usage: 0.0,
            },
            LinkState {
                capacity: 100.0,
                unfrozen: 1,
                frozen_usage: 0.0,
            },
            LinkState {
                capacity: 100.0,
                unfrozen: 1,
                frozen_usage: 0.0,
            },
        ];
        let link_members: Vec<Vec<usize>> = (0..links.len())
            .map(|li| {
                (0..flow_links.len())
                    .filter(|&i| flow_links[i].contains(&li))
                    .collect()
            })
            .collect();
        let mut rates = Vec::new();
        let mut frozen = Vec::new();
        max_min_rates(
            &caps,
            &flow_links,
            &mut links,
            &link_members,
            &mut rates,
            &mut frozen,
        );
        assert!((rates[0] - 6.0).abs() < 1e-9, "A: {rates:?}");
        assert!((rates[1] - 4.0).abs() < 1e-9, "B: {rates:?}");
        assert!((rates[2] - 2.0).abs() < 1e-9, "C: {rates:?}");
    }
}
