//! Property-based oracle for the global max-min fair fluid model.
//!
//! Random topologies (heterogeneous access links, dedicated and shared core
//! links, loss) are driven through random operation sequences — flow starts,
//! block completions, connection closes, bandwidth changes, cross-traffic
//! changes — and after every operation three invariants must hold:
//!
//! 1. **Conservation** — no link carries more than its usable capacity
//!    (loss-discounted, minus cross traffic);
//! 2. **Max-min optimality** — every active flow is either at its own TCP
//!    ceiling or bottlenecked at some *saturated* link on its path where no
//!    competing flow holds a larger rate (increasing it would require
//!    decreasing a smaller-or-equal flow);
//! 3. **Incremental = from-scratch** — re-solving everything from scratch
//!    ([`Network::reprice_all`]) reproduces the incrementally maintained
//!    rates, so component-scoped repricing never drifts from the global
//!    optimum.

use desim::{RngFactory, SimTime};
use dissem_codec::BlockId;
use netsim::units::kbps;
use netsim::{topology, Network, NodeId, NodeSpec, PathSpec, Topology};
use proptest::prelude::*;

/// Relative tolerance for the invariant checks: the solver is exact modulo
/// floating point and the deliberate `RATE_EPSILON` re-schedule damping.
const TOL: f64 = 1e-6;

/// Builds a deterministic heterogeneous topology from generator knobs:
/// per-node access capacities cycle through `access` steps, core links get
/// `core` capacity, and when `shared` is true every "even" ordered pair is
/// remapped onto one shared bottleneck link.
fn build_topology(n: usize, access_step: u64, core_kb: u64, loss: f64, shared: bool) -> Topology {
    let nodes: Vec<NodeSpec> = (0..n)
        .map(|i| NodeSpec {
            up: kbps(400.0 + (i as u64 * access_step % 1600) as f64),
            down: kbps(600.0 + ((i as u64 + 1) * access_step % 1600) as f64),
            access_delay: desim::SimDuration::from_millis(1),
        })
        .collect();
    let mut core = Vec::with_capacity(n);
    for a in 0..n {
        let mut row = Vec::with_capacity(n);
        for b in 0..n {
            row.push(PathSpec {
                bw: kbps(core_kb as f64),
                delay: desim::SimDuration::from_millis(5 + ((a * 7 + b * 3) % 40) as u64),
                loss: if (a + b) % 3 == 0 { loss } else { 0.0 },
            });
        }
        core.push(row);
    }
    let mut topo = Topology::new(nodes, core);
    if shared {
        let pairs: Vec<(NodeId, NodeId)> = (0..n as u32)
            .flat_map(|a| (0..n as u32).map(move |b| (NodeId(a), NodeId(b))))
            .filter(|(a, b)| a != b && (a.0 + b.0) % 2 == 0)
            .collect();
        if !pairs.is_empty() {
            topo.share_core(&pairs, kbps(core_kb as f64), loss);
        }
    }
    topo
}

/// The active flows of `net`, in deterministic order.
fn active_flows(net: &Network, n: usize) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::new();
    for a in 0..n as u32 {
        for b in 0..n as u32 {
            if a == b {
                continue;
            }
            if let Some(c) = net.connection(NodeId(a), NodeId(b)) {
                if c.is_active() {
                    out.push((NodeId(a), NodeId(b)));
                }
            }
        }
    }
    out
}

/// A flow's own TCP ceiling, recomputed from public state: the Mathis loss
/// limit and the slow-start window limit.
fn flow_ceiling(net: &Network, from: NodeId, to: NodeId) -> f64 {
    let topo = net.topology();
    let path = netsim::tcp::TcpPath {
        bottleneck: f64::INFINITY,
        rtt: topo.rtt(from, to),
        loss: topo.path(from, to).loss,
    };
    let acked = net.connection(from, to).expect("flow exists").bytes_acked();
    path.mathis_cap().min(path.slow_start_cap(acked))
}

/// Checks conservation and max-min optimality over the current allocation.
fn check_invariants(net: &Network, n: usize) {
    let topo = net.topology();
    let flows = active_flows(net, n);

    // Per-link usage from the test's own bookkeeping.
    let mut usage = vec![0.0f64; topo.num_links()];
    for &(a, b) in &flows {
        let rate = net.current_rate(a, b).unwrap();
        for l in topo.links_on_path(a, b) {
            usage[l.index()] += rate;
        }
    }

    let usable = |l: netsim::LinkId| (topo.link_capacity(l) - net.cross_traffic(l)).max(1.0);

    // 1. Conservation.
    for l in (0..topo.num_links() as u32).map(netsim::LinkId) {
        let cap = usable(l);
        prop_assert!(
            usage[l.index()] <= cap * (1.0 + TOL) + 1e-6,
            "link {l:?} over capacity: {} > {cap}",
            usage[l.index()]
        );
    }

    // 2. Max-min optimality: every flow is ceiling-limited or bottlenecked
    //    at a saturated link where it is (one of) the largest flows.
    for &(a, b) in &flows {
        let rate = net.current_rate(a, b).unwrap();
        let ceiling = flow_ceiling(net, a, b);
        if rate >= ceiling * (1.0 - TOL) {
            continue; // capped by its own TCP ceiling
        }
        let mut bottlenecked = false;
        for l in topo.links_on_path(a, b) {
            let cap = usable(l);
            let saturated = usage[l.index()] >= cap * (1.0 - TOL) - 1e-6;
            if !saturated {
                continue;
            }
            let max_on_link = flows
                .iter()
                .filter(|&&(x, y)| topo.links_on_path(x, y).contains(&l))
                .map(|&(x, y)| net.current_rate(x, y).unwrap())
                .fold(0.0f64, f64::max);
            if rate >= max_on_link * (1.0 - TOL) {
                bottlenecked = true;
                break;
            }
        }
        prop_assert!(
            bottlenecked,
            "flow {a}→{b} at {rate} (ceiling {ceiling}) has no saturated \
             bottleneck link where it is maximal"
        );
    }
}

/// One generated operation, decoded modulo the current state:
/// `(kind, x, y, magnitude)`.
type Op = (u8, u8, u8, u16);

fn run_scenario(n: usize, access_step: u64, core_kb: u64, loss: f64, shared: bool, ops: &[Op]) {
    let topo = build_topology(n, access_step, core_kb, loss, shared);
    let mut net = Network::new(topo);
    let mut now = SimTime::ZERO;
    let mut next_block = 0u32;

    for &(kind, x, y, mag) in ops.iter() {
        now += desim::SimDuration::from_millis(100);
        let a = NodeId(u32::from(x) % n as u32);
        let b = NodeId(u32::from(y) % n as u32);
        match kind {
            // Start (or extend) a flow.
            0 => {
                if a != b {
                    let bytes = 20_000 + u64::from(mag) * 400;
                    net.queue_block(now, a, b, BlockId(next_block), bytes);
                    next_block += 1;
                }
            }
            // Complete the in-flight block of some active flow.
            1 => {
                let flows = active_flows(&net, n);
                if !flows.is_empty() {
                    let (f, t) = flows[usize::from(mag) % flows.len()];
                    net.on_block_done(now, f, t);
                }
            }
            // Close a connection.
            2 => {
                if a != b {
                    net.close_connection(now, a, b);
                }
            }
            // Re-size the core link carrying a → b.
            3 => {
                if a != b {
                    let bw = kbps(100.0 + f64::from(mag % 2000));
                    net.topology_mut().set_core_bw(a, b, bw);
                    net.reprice_paths(now, &[(a, b)]);
                }
            }
            // Cross traffic occupying up to ~half of the core link.
            4 => {
                if a != b {
                    let link = net.topology().core_link(a, b);
                    let cap = net.topology().link_capacity(link);
                    let rate = cap * f64::from(mag % 128) / 256.0;
                    net.set_cross_traffic(now, (a, b), rate);
                }
            }
            _ => unreachable!("kind is generated in 0..5"),
        }
        check_invariants(&net, n);
    }

    // 3. Incremental = from-scratch: a full re-solve must not move any rate.
    let before: Vec<_> = active_flows(&net, n)
        .into_iter()
        .map(|(a, b)| ((a, b), net.current_rate(a, b).unwrap()))
        .collect();
    net.reprice_all(now);
    for ((a, b), old) in before {
        let new = net.current_rate(a, b).unwrap();
        prop_assert!(
            (new - old).abs() <= old * TOL,
            "incremental drift on {a}→{b}: {old} vs from-scratch {new}"
        );
    }
}

proptest! {
    /// Random dedicated-link topologies under random operation sequences.
    #[test]
    fn dedicated_core_allocations_are_max_min_fair(
        n in 3usize..7,
        access_step in 1u64..997,
        core_kb in 200u64..3_000,
        ops in proptest::collection::vec(
            (0u8..5, any::<u8>(), any::<u8>(), any::<u16>()), 1..60),
    ) {
        run_scenario(n, access_step, core_kb, 0.0, false, &ops);
    }

    /// Shared-bottleneck topologies with loss: the discount, the shared
    /// contention and the Mathis ceilings must all compose correctly.
    #[test]
    fn shared_core_allocations_are_max_min_fair(
        n in 3usize..7,
        access_step in 1u64..997,
        core_kb in 200u64..3_000,
        ops in proptest::collection::vec(
            (0u8..5, any::<u8>(), any::<u8>(), any::<u16>()), 1..60),
    ) {
        run_scenario(n, access_step, core_kb, 0.02, true, &ops);
    }
}

/// Deterministic regression: the worked three-flow example from
/// `docs/NETWORK_MODEL.md`, checked through the public API end to end.
#[test]
fn worked_example_allocates_6_4_2() {
    // Node 0 has a 10 KB/s uplink carrying flows A (0→1) and B (0→2); B and
    // C (3→2) share node 2's 6 KB/s downlink; C is ceiling-capped at ~2 KB/s
    // by slow start over a long RTT. Expected max-min rates: C = 2 (cap),
    // B = 4 (downlink saturates at level 4), A = 6 (uplink saturates).
    let mk = |up: f64, down: f64, delay_ms: u64| NodeSpec {
        up,
        down,
        access_delay: desim::SimDuration::from_millis(delay_ms),
    };
    let nodes = vec![
        mk(10_000.0, 1e9, 1),
        mk(1e9, 1e9, 1),
        mk(1e9, 6_000.0, 1),
        mk(1e9, 1e9, 1),
    ];
    let wide = PathSpec {
        bw: 1e9,
        delay: desim::SimDuration::from_millis(10),
        loss: 0.0,
    };
    let mut core = vec![vec![wide; 4]; 4];
    // C's path is long enough (both directions contribute to the RTT) that
    // its fresh-connection slow-start cap (INIT_CWND / rtt = 4380 B / 2.204 s)
    // is ~1987 B/s < the fair share.
    core[3][2].delay = desim::SimDuration::from_millis(1_100);
    core[2][3].delay = desim::SimDuration::from_millis(1_100);
    let mut net = Network::new(Topology::new(nodes, core));

    let t0 = SimTime::ZERO;
    net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 1_000_000); // A
    net.queue_block(t0, NodeId(0), NodeId(2), BlockId(1), 1_000_000); // B
    net.queue_block(t0, NodeId(3), NodeId(2), BlockId(2), 1_000_000); // C

    let rate = |f: u32, t: u32| net.current_rate(NodeId(f), NodeId(t)).unwrap();
    let c = rate(3, 2);
    let b = rate(0, 2);
    let a = rate(0, 1);
    assert!((c - 1987.3).abs() < 1.0, "C pinned by its ceiling: {c}");
    assert!(
        (b - (6_000.0 - c)).abs() < 1.0,
        "B takes the downlink rest: {b}"
    );
    assert!(
        (a - (10_000.0 - b)).abs() < 1.0,
        "A takes the uplink rest: {a}"
    );
}

/// Determinism: the same operation sequence replays to identical rates.
#[test]
fn identical_histories_give_identical_allocations() {
    let run = || {
        let rng = RngFactory::new(9);
        let topo = topology::shared_core_mesh(5, kbps(1_600.0), 0.01, &rng);
        let mut net = Network::new(topo);
        let mut now = SimTime::ZERO;
        for i in 0..40u32 {
            now += desim::SimDuration::from_millis(250);
            let a = NodeId(i % 5);
            let b = NodeId((i + 1 + i / 7) % 5);
            if a == b {
                continue;
            }
            match i % 4 {
                0 | 1 => {
                    net.queue_block(now, a, b, BlockId(i), 30_000 + u64::from(i) * 1_000);
                }
                2 => {
                    net.on_block_done(now, a, b);
                }
                _ => {
                    net.set_cross_traffic(now, (a, b), f64::from(i % 3) * 20_000.0);
                }
            }
        }
        let mut rates = Vec::new();
        for a in 0..5u32 {
            for b in 0..5u32 {
                if let Some(r) = net.current_rate(NodeId(a), NodeId(b)) {
                    rates.push((a, b, r.to_bits()));
                }
            }
        }
        rates
    };
    assert_eq!(run(), run(), "bit-identical allocations per history");
}
