//! A SplitStream-like baseline (paper §5, compared in Figs 4, 5, 14).
//!
//! SplitStream splits the content into `k` stripes and pushes each stripe
//! down its own tree; the forest is built so that every node is an interior
//! node in (at most) one tree, spreading the forwarding load. The property
//! the paper leans on is structural: a slow or lossy link high up in one
//! stripe tree throttles that entire stripe for the whole subtree beneath it,
//! and no mechanism re-routes around it. Like the paper's methodology, the
//! content is treated as source-encoded: a node completes once it has
//! received `(1 + 0.04) · n` distinct blocks.

use std::collections::{BTreeMap, HashMap, VecDeque};

use desim::SimDuration;
use dissem_codec::{BlockBitmap, BlockId, FileSpec};
use netsim::{
    BlockReceipt, Ctx, NodeId, ProbeStats, Protocol, Runner, TimerToken, Topology, WireSize,
};
use rand::seq::SliceRandom;

/// Number of stripes (and stripe trees).
pub const DEFAULT_STRIPES: usize = 8;
/// Interior fan-out of each stripe tree.
pub const STRIPE_FANOUT: usize = 4;
/// Encoding overhead allowance granted by the paper.
pub const ASSUMED_ENCODING_OVERHEAD: f64 = 0.04;
/// Blocks kept in flight towards each child per stripe.
const PUSH_WINDOW: usize = 3;

/// SplitStream's timer vocabulary (see [`netsim::TimerToken`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsTimer {
    /// Housekeeping: drain stalled backlogs, keep the source injecting.
    Keepalive,
}

impl TimerToken for SsTimer {
    fn encode(&self) -> u64 {
        0
    }

    fn decode(_bits: u64) -> Self {
        SsTimer::Keepalive
    }
}

/// SplitStream needs no dynamic control traffic in this model; the forest is
/// computed at start-up. The only message is a completion-irrelevant
/// placeholder kept for protocol-trait compatibility.
#[derive(Debug, Clone)]
pub enum SsMsg {}

impl WireSize for SsMsg {
    fn wire_size(&self) -> usize {
        0
    }

    fn kind(&self) -> &'static str {
        // Uninhabited: no value of `SsMsg` exists to be traced.
        match *self {}
    }
}

/// The stripe forest: for every stripe, each node's parent and children.
#[derive(Debug, Clone)]
pub struct StripeForest {
    /// `children[stripe][node]` — the node's children in that stripe's tree.
    children: Vec<Vec<Vec<NodeId>>>,
    stripes: usize,
}

impl StripeForest {
    /// Builds a forest of `stripes` trees over `n` nodes rooted at node 0.
    ///
    /// Interior nodes of stripe `s` are (preferentially) the nodes whose index
    /// is congruent to `s` modulo the stripe count, which yields the
    /// interior-node-disjointness SplitStream aims for; remaining nodes attach
    /// as leaves.
    pub fn build(n: usize, stripes: usize, rng: &desim::RngFactory) -> Self {
        assert!(n >= 2, "need at least a source and one receiver");
        assert!(stripes >= 1);
        let mut rng = rng.stream("splitstream.forest");
        let mut children = vec![vec![Vec::new(); n]; stripes];
        for (s, tree) in children.iter_mut().enumerate() {
            // Interior candidates for this stripe, excluding the root.
            let mut interior: Vec<u32> = (1..n as u32)
                .filter(|i| (*i as usize) % stripes == s)
                .collect();
            interior.shuffle(&mut rng);
            let mut leaves: Vec<u32> = (1..n as u32)
                .filter(|i| (*i as usize) % stripes != s)
                .collect();
            leaves.shuffle(&mut rng);

            // Chain of attachment points: the root, then interior nodes in
            // breadth-first order as their slots fill.
            let mut attach: Vec<u32> = vec![0];
            let mut slots: HashMap<u32, usize> = HashMap::new();
            slots.insert(0, STRIPE_FANOUT);
            let place = |node: u32,
                         attach: &mut Vec<u32>,
                         slots: &mut HashMap<u32, usize>,
                         tree: &mut Vec<Vec<NodeId>>,
                         becomes_interior: bool| {
                // Find the first attachment point with a free slot; if the
                // stripe has too few interior nodes for the population (small
                // deployments), exceed the deepest attachment point's fanout
                // rather than failing.
                let parent = attach
                    .iter()
                    .position(|p| slots.get(p).copied().unwrap_or(0) > 0)
                    .map(|pos| attach[pos])
                    .unwrap_or_else(|| *attach.last().expect("attach is never empty"));
                if let Some(free) = slots.get_mut(&parent) {
                    *free = free.saturating_sub(1);
                }
                tree[parent as usize].push(NodeId(node));
                if becomes_interior {
                    attach.push(node);
                    slots.insert(node, STRIPE_FANOUT);
                }
            };
            for node in interior {
                place(node, &mut attach, &mut slots, tree, true);
            }
            for node in leaves {
                place(node, &mut attach, &mut slots, tree, false);
            }
        }
        StripeForest { children, stripes }
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.stripes
    }

    /// Children of `node` in `stripe`'s tree.
    pub fn children(&self, stripe: usize, node: NodeId) -> &[NodeId] {
        &self.children[stripe][node.index()]
    }

    /// Which stripe a block belongs to.
    pub fn stripe_of(&self, block: BlockId) -> usize {
        block.index() % self.stripes
    }

    /// Total number of forwarding children over all stripes for `node`.
    pub fn fanout(&self, node: NodeId) -> usize {
        (0..self.stripes)
            .map(|s| self.children(s, node).len())
            .sum()
    }

    /// Removes `node` from every child list (used when it leaves or crashes).
    /// Its own subtrees are *not* re-parented: SplitStream has no repair
    /// mechanism in this model, which is exactly the structural weakness the
    /// paper's comparison highlights.
    pub fn remove_node(&mut self, node: NodeId) {
        for tree in &mut self.children {
            for kids in tree.iter_mut() {
                kids.retain(|&c| c != node);
            }
        }
    }
}

/// A SplitStream participant.
#[derive(Debug, Clone)]
pub struct SplitStreamNode {
    id: NodeId,
    file: FileSpec,
    forest: StripeForest,
    have: BlockBitmap,
    /// Per-child queue of blocks awaiting a push slot.
    backlog: BTreeMap<NodeId, VecDeque<BlockId>>,
    completion_target: u32,
    block_space: u32,
    /// Source bookkeeping: next block to inject.
    next_inject: u32,
    completed_at: Option<f64>,
    arrival_times: Vec<f64>,
    duplicates: u64,
    useful_bytes: u64,
}

impl SplitStreamNode {
    /// Creates the node; node 0 is the source.
    pub fn new(id: NodeId, file: FileSpec, forest: StripeForest) -> Self {
        let n = file.num_blocks();
        let completion_target = file.completion_target(ASSUMED_ENCODING_OVERHEAD);
        // The source injects a slightly longer encoded stream than strictly
        // needed so stragglers are not starved of distinct blocks.
        let block_space = (f64::from(n) * (1.0 + 2.0 * ASSUMED_ENCODING_OVERHEAD)).ceil() as u32;
        let have = if id == NodeId(0) {
            BlockBitmap::full(block_space)
        } else {
            BlockBitmap::new(block_space)
        };
        SplitStreamNode {
            id,
            file,
            forest,
            have,
            backlog: BTreeMap::new(),
            completion_target,
            block_space,
            next_inject: 0,
            completed_at: None,
            arrival_times: Vec::new(),
            duplicates: 0,
            useful_bytes: 0,
        }
    }

    /// Completion time (seconds), if reached.
    pub fn completed_at(&self) -> Option<f64> {
        self.completed_at
    }

    /// Arrival times of useful blocks (seconds).
    pub fn arrival_times(&self) -> &[f64] {
        &self.arrival_times
    }

    /// Number of duplicate receipts (should be zero: trees never duplicate).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Number of distinct blocks held.
    pub fn blocks_held(&self) -> u32 {
        self.have.count()
    }

    fn is_source(&self) -> bool {
        self.id == NodeId(0)
    }

    fn download_done(&self) -> bool {
        self.have.count() >= self.completion_target
    }

    /// Pushes queued blocks towards `child` while its pipe has room.
    fn drain_child(&mut self, ctx: &mut Ctx<'_, Self>, child: NodeId) {
        let Some(queue) = self.backlog.get_mut(&child) else {
            return;
        };
        let mut budget = PUSH_WINDOW.saturating_sub(ctx.pending_to(child));
        while budget > 0 {
            let Some(block) = queue.pop_front() else {
                break;
            };
            let bytes = if block.0 < self.file.num_blocks() {
                u64::from(self.file.block_size(block))
            } else {
                u64::from(self.file.block_bytes)
            };
            ctx.queue_block(child, block, bytes);
            budget -= 1;
        }
    }

    /// Enqueues `block` for every child in its stripe tree and pushes what fits.
    fn forward(&mut self, ctx: &mut Ctx<'_, Self>, block: BlockId) {
        let stripe = self.forest.stripe_of(block);
        let children: Vec<NodeId> = self.forest.children(stripe, self.id).to_vec();
        for child in children {
            self.backlog.entry(child).or_default().push_back(block);
            self.drain_child(ctx, child);
        }
    }

    /// Source: keep injecting the encoded stream into the stripe trees.
    fn source_inject(&mut self, ctx: &mut Ctx<'_, Self>) {
        if !self.is_source() {
            return;
        }
        // Keep a bounded number of blocks buffered per child so a slow stripe
        // does not absorb the entire stream into its backlog at t = 0.
        while self.next_inject < self.block_space {
            let block = BlockId(self.next_inject);
            let stripe = self.forest.stripe_of(block);
            let children = self.forest.children(stripe, self.id);
            let busiest = children
                .iter()
                .map(|c| ctx.pending_to(*c) + self.backlog.get(c).map(VecDeque::len).unwrap_or(0))
                .max()
                .unwrap_or(0);
            if busiest >= PUSH_WINDOW * 2 {
                break;
            }
            self.forward(ctx, block);
            self.next_inject += 1;
        }
    }
}

impl Protocol for SplitStreamNode {
    type Msg = SsMsg;
    type Timer = SsTimer;

    fn on_init(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.source_inject(ctx);
        ctx.set_timer(SimDuration::from_secs(1), SsTimer::Keepalive);
    }

    fn on_control(&mut self, _ctx: &mut Ctx<'_, Self>, _from: NodeId, msg: SsMsg) {
        match msg {}
    }

    fn on_block_received(&mut self, ctx: &mut Ctx<'_, Self>, _from: NodeId, receipt: BlockReceipt) {
        let block = receipt.block;
        if self.have.contains(block) {
            self.duplicates += 1;
            return;
        }
        self.have.insert(block);
        self.arrival_times.push(ctx.now().as_secs_f64());
        self.useful_bytes += receipt.bytes;
        if self.download_done() && self.completed_at.is_none() {
            self.completed_at = Some(ctx.now().as_secs_f64());
        }
        // Forward down our stripe subtree regardless of our own completion.
        self.forward(ctx, block);
    }

    fn on_block_sent(&mut self, ctx: &mut Ctx<'_, Self>, to: NodeId, _block: BlockId) {
        self.drain_child(ctx, to);
        self.source_inject(ctx);
    }

    fn on_peer_failed(&mut self, _ctx: &mut Ctx<'_, Self>, peer: NodeId) {
        // Stop forwarding to the dead child; if the peer was our parent in
        // some stripe we simply stop receiving that stripe (no repair).
        self.backlog.remove(&peer);
        self.forest.remove_node(peer);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: SsTimer) {
        match timer {
            SsTimer::Keepalive => {
                // Drain any backlog that stalled (e.g. after a bandwidth change).
                let children: Vec<NodeId> = self.backlog.keys().copied().collect();
                for child in children {
                    self.drain_child(ctx, child);
                }
                self.source_inject(ctx);
                ctx.set_timer(SimDuration::from_secs(1), SsTimer::Keepalive);
            }
        }
    }

    fn is_complete(&self) -> bool {
        self.is_source() || self.download_done()
    }

    fn probe_stats(&self) -> ProbeStats {
        ProbeStats {
            useful_bytes: self.useful_bytes,
            useful_blocks: self.arrival_times.len() as u64,
            duplicate_blocks: self.duplicates,
            // One parent per stripe tree (none for the source); children
            // across every stripe this node forwards on.
            senders: if self.is_source() {
                0
            } else {
                self.forest.stripes()
            },
            receivers: self.forest.fanout(self.id),
        }
    }
}

/// Builds the SplitStream node set for a topology.
pub fn build_nodes(
    topo: &Topology,
    file: FileSpec,
    rng: &desim::RngFactory,
) -> Vec<SplitStreamNode> {
    let forest = StripeForest::build(topo.len(), DEFAULT_STRIPES, rng);
    (0..topo.len() as u32)
        .map(|i| SplitStreamNode::new(NodeId(i), file, forest.clone()))
        .collect()
}

/// Builds a ready-to-run runner for a SplitStream experiment.
pub fn build_runner(
    topo: Topology,
    file: FileSpec,
    rng: &desim::RngFactory,
) -> Runner<SplitStreamNode> {
    let nodes = build_nodes(&topo, file, rng);
    let mut runner = Runner::new(netsim::Network::new(topo), nodes, rng);
    runner.exempt_from_completion(NodeId(0));
    runner
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::RngFactory;
    use netsim::{topology, StopReason};

    #[test]
    fn forest_reaches_every_node_in_every_stripe() {
        let rng = RngFactory::new(5);
        let forest = StripeForest::build(40, 8, &rng);
        for stripe in 0..8 {
            let mut seen = [false; 40];
            let mut stack = vec![NodeId(0)];
            seen[0] = true;
            while let Some(x) = stack.pop() {
                for &c in forest.children(stripe, x) {
                    assert!(!seen[c.index()], "node visited twice in stripe {stripe}");
                    seen[c.index()] = true;
                    stack.push(c);
                }
            }
            assert!(
                seen.iter().all(|&s| s),
                "stripe {stripe} tree does not span all nodes"
            );
        }
    }

    #[test]
    fn interior_load_is_spread_across_stripes() {
        let rng = RngFactory::new(6);
        let n = 64;
        let forest = StripeForest::build(n, 8, &rng);
        // No non-root node should be interior (have children) in many stripes.
        for node in 1..n as u32 {
            let interior_in = (0..8)
                .filter(|&s| !forest.children(s, NodeId(node)).is_empty())
                .count();
            assert!(
                interior_in <= 2,
                "node {node} is interior in {interior_in} stripes; SplitStream aims for 1"
            );
        }
    }

    #[test]
    fn stripes_partition_blocks() {
        let rng = RngFactory::new(7);
        let forest = StripeForest::build(10, 8, &rng);
        let counts: Vec<usize> = (0..8)
            .map(|s| {
                (0..800u32)
                    .filter(|b| forest.stripe_of(BlockId(*b)) == s)
                    .count()
            })
            .collect();
        assert!(counts.iter().all(|&c| c == 100));
    }

    #[test]
    fn splitstream_completes_a_small_download() {
        let rng = RngFactory::new(9);
        let topo = topology::modelnet_mesh(10, 0.005, &rng);
        let mut runner = build_runner(topo, FileSpec::new(512 * 1024, 16 * 1024), &rng);
        let report = runner.run(SimDuration::from_secs(3_600));
        assert_eq!(report.reason, StopReason::AllComplete, "{report:?}");
        // Trees never deliver the same block twice to a node.
        for node in runner.nodes().iter().skip(1) {
            assert_eq!(node.duplicates(), 0);
        }
    }
}
