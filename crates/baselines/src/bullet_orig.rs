//! The original Bullet (SOSP '03) baseline.
//!
//! Bullet — the predecessor Bullet′ improves on — also layers a mesh over a
//! RanSub control tree, but with the fixed-parameter behaviours the paper
//! identifies as its weaknesses (§4.2, §5):
//!
//! * the source pushes disjoint subsets of fresh blocks to its tree
//!   children, so no receiver gets everything from the tree and the mesh
//!   must recover the rest;
//! * receivers locate additional senders through RanSub and pull missing
//!   blocks from them, but the peer set is **fixed at 10 senders/receivers**
//!   and never re-evaluated;
//! * each sender is kept at a **fixed number of outstanding requests**;
//! * requests are ordered **randomly** (Bullet reconciles sets against a
//!   summary rather than tracking global rarity);
//! * the stream is assumed to be source-encoded, so a download completes
//!   after receiving `(1 + 0.04) · n` distinct blocks — the same allowance
//!   the paper grants Bullet in its experiments.
//!
//! The implementation reuses Bullet′'s node with the corresponding knobs
//! pinned, plus the tree-push behaviour layered on the source and interior
//! nodes. Reusing the machinery keeps the comparison about the *policies*
//! (fixed vs adaptive), exactly as the paper frames it.

use dissem_codec::FileSpec;
use netsim::{NodeId, Topology};
use overlay::ControlTree;

use bullet_prime::{
    BulletPrimeNode, Config, OutstandingPolicy, PeerSetPolicy, RequestStrategy, TransferMode,
};

/// Fixed number of senders and receivers in original Bullet.
pub const BULLET_PEERS: usize = 10;
/// Fixed per-sender outstanding window in original Bullet.
pub const BULLET_OUTSTANDING: u32 = 5;
/// Encoding overhead the paper grants Bullet and SplitStream.
pub const ASSUMED_ENCODING_OVERHEAD: f64 = 0.04;

/// Configuration for an original-Bullet deployment.
pub fn bullet_config(file: FileSpec) -> Config {
    let mut cfg = Config::new(file);
    cfg.peer_policy = PeerSetPolicy::Fixed(BULLET_PEERS);
    cfg.outstanding_policy = OutstandingPolicy::Fixed(BULLET_OUTSTANDING);
    cfg.request_strategy = RequestStrategy::Random;
    cfg.transfer_mode = TransferMode::Encoded {
        epsilon: ASSUMED_ENCODING_OVERHEAD,
    };
    // Original Bullet exchanged availability summaries periodically (every
    // RanSub epoch) rather than with Bullet's self-clocking incremental
    // diffs, so receivers often act on stale information.
    cfg.lazy_diffs = true;
    cfg.housekeeping_period = desim::SimDuration::from_secs(5);
    cfg
}

/// Builds the per-node protocol instances for an original-Bullet run.
///
/// Node 0 is the source. The control tree uses the same fan-out as Bullet′ so
/// differences in the measurements come from the protocol policies, not the
/// control topology.
pub fn build_nodes(
    topo: &Topology,
    file: FileSpec,
    rng: &desim::RngFactory,
) -> Vec<BulletPrimeNode> {
    let cfg = bullet_config(file);
    let tree = ControlTree::random(topo.len(), bullet_prime::builder::CONTROL_TREE_DEGREE, rng);
    (0..topo.len() as u32)
        .map(|i| BulletPrimeNode::new(NodeId(i), &tree, cfg.clone()))
        .collect()
}

/// Builds a ready-to-run runner for an original-Bullet experiment.
pub fn build_runner(
    topo: Topology,
    file: FileSpec,
    rng: &desim::RngFactory,
) -> netsim::Runner<BulletPrimeNode> {
    let nodes = build_nodes(&topo, file, rng);
    let mut runner = netsim::Runner::new(netsim::Network::new(topo), nodes, rng);
    runner.exempt_from_completion(NodeId(0));
    runner
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::{RngFactory, SimDuration};
    use netsim::{topology, StopReason};

    #[test]
    fn config_pins_the_fixed_parameters() {
        let cfg = bullet_config(FileSpec::from_mb_kb(1, 16));
        assert_eq!(cfg.peer_policy, PeerSetPolicy::Fixed(10));
        assert_eq!(cfg.outstanding_policy, OutstandingPolicy::Fixed(5));
        assert_eq!(cfg.request_strategy, RequestStrategy::Random);
        assert!(matches!(cfg.transfer_mode, TransferMode::Encoded { .. }));
    }

    #[test]
    fn original_bullet_completes_a_small_download() {
        let rng = RngFactory::new(21);
        let topo = topology::modelnet_mesh(8, 0.01, &rng);
        let mut runner = build_runner(topo, FileSpec::new(256 * 1024, 16 * 1024), &rng);
        let report = runner.run(SimDuration::from_secs(3_600));
        assert_eq!(report.reason, StopReason::AllComplete, "{report:?}");
    }
}
