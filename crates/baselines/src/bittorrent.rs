//! A BitTorrent-like baseline (paper §5, compared in Figs 4, 5, 14).
//!
//! This models the BitTorrent the paper compared against: a central tracker
//! (co-located with the seed) hands out random peer lists; peers exchange
//! bitfields and `Have` announcements; upload slots are governed by
//! tit-for-tat choking with a periodically rotated optimistic unchoke; piece
//! selection is strict rarest-first; and — the property the paper calls out —
//! every knob is a hard-coded constant: a fixed number of connections, a
//! fixed number of upload slots and a fixed five outstanding requests per
//! peer, with no adaptation to network conditions.

use std::collections::{BTreeMap, BTreeSet};

use desim::SimDuration;
use dissem_codec::{BlockBitmap, BlockId, FileSpec};
use netsim::{BlockReceipt, Ctx, NodeId, ProbeStats, Protocol, TimerToken, WireSize};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// BitTorrent's timer vocabulary (see [`netsim::TimerToken`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BtTimer {
    /// Recompute the choke set.
    Choke,
    /// Rotate the optimistic unchoke.
    Optimistic,
    /// Housekeeping: request refresh, tracker re-announce.
    Keepalive,
}

impl TimerToken for BtTimer {
    fn encode(&self) -> u64 {
        match self {
            BtTimer::Choke => 0,
            BtTimer::Optimistic => 1,
            BtTimer::Keepalive => 2,
        }
    }

    fn decode(bits: u64) -> Self {
        match bits {
            0 => BtTimer::Choke,
            1 => BtTimer::Optimistic,
            2 => BtTimer::Keepalive,
            other => panic!("not a BitTorrent timer token: {other}"),
        }
    }
}

/// Hard-coded BitTorrent constants (the point of the baseline).
#[derive(Debug, Clone)]
pub struct BitTorrentConfig {
    /// The file being distributed.
    pub file: FileSpec,
    /// Maximum number of neighbours to hold connections with.
    pub max_connections: usize,
    /// Number of peers the tracker returns per announce.
    pub tracker_peers: usize,
    /// Number of regular (tit-for-tat) upload slots.
    pub upload_slots: usize,
    /// Fixed number of outstanding requests per peer.
    pub outstanding_per_peer: usize,
    /// Number of 16 KB sub-piece blocks per BitTorrent piece (256 KB pieces).
    /// Data can only be shared onward at piece granularity, which is the
    /// standard BitTorrent behaviour and one of the costs the paper's
    /// comparison includes.
    pub piece_blocks: u32,
    /// Choke-recomputation interval.
    pub choke_interval: SimDuration,
    /// Optimistic-unchoke rotation interval.
    pub optimistic_interval: SimDuration,
}

impl BitTorrentConfig {
    /// The classic defaults.
    pub fn new(file: FileSpec) -> Self {
        BitTorrentConfig {
            file,
            max_connections: 20,
            tracker_peers: 40,
            upload_slots: 4,
            outstanding_per_peer: 5,
            piece_blocks: 16,
            choke_interval: SimDuration::from_secs(10),
            optimistic_interval: SimDuration::from_secs(30),
        }
    }
}

/// BitTorrent control messages.
#[derive(Debug, Clone)]
pub enum BtMsg {
    /// Announce to the tracker and ask for peers.
    TrackerRequest,
    /// Tracker reply: a random subset of known participants.
    TrackerResponse {
        /// The peers to try connecting to.
        peers: Vec<NodeId>,
    },
    /// Open a neighbour relationship; carries the sender's piece bitfield.
    Handshake {
        /// Pieces the initiating peer has completed.
        bitfield: Vec<u32>,
    },
    /// Reply to a handshake with our own piece bitfield.
    HandshakeAck {
        /// Pieces the accepting peer has completed.
        bitfield: Vec<u32>,
    },
    /// Announce completion of one piece to a neighbour.
    Have {
        /// The newly completed piece.
        piece: u32,
    },
    /// We would like to download from the recipient.
    Interested,
    /// We no longer need anything the recipient has.
    NotInterested,
    /// The recipient may no longer request blocks from us.
    Choke,
    /// The recipient may request blocks from us.
    Unchoke,
    /// Request blocks (served only while unchoked).
    Request {
        /// Blocks requested, in order.
        blocks: Vec<BlockId>,
    },
}

impl WireSize for BtMsg {
    fn wire_size(&self) -> usize {
        const HDR: usize = 9;
        match self {
            BtMsg::TrackerRequest
            | BtMsg::Interested
            | BtMsg::NotInterested
            | BtMsg::Choke
            | BtMsg::Unchoke => HDR,
            BtMsg::TrackerResponse { peers } => HDR + 6 * peers.len(),
            BtMsg::Handshake { bitfield } | BtMsg::HandshakeAck { bitfield } => {
                HDR + 4 + bitfield.len().div_ceil(2)
            }
            BtMsg::Have { .. } => HDR + 4,
            BtMsg::Request { blocks } => HDR + 4 * blocks.len(),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            BtMsg::TrackerRequest => "tracker_request",
            BtMsg::TrackerResponse { .. } => "tracker_response",
            BtMsg::Handshake { .. } => "handshake",
            BtMsg::HandshakeAck { .. } => "handshake_ack",
            BtMsg::Have { .. } => "have",
            BtMsg::Interested => "interested",
            BtMsg::NotInterested => "not_interested",
            BtMsg::Choke => "choke",
            BtMsg::Unchoke => "unchoke",
            BtMsg::Request { .. } => "request",
        }
    }
}

/// Per-neighbour state.
#[derive(Debug, Clone, Default)]
struct Neighbour {
    /// Pieces the neighbour has completed (from bitfield + Have messages).
    has_pieces: BTreeSet<u32>,
    /// We are choking them (they may not request from us).
    am_choking: bool,
    /// They are choking us.
    peer_choking: bool,
    /// We are interested in their data.
    am_interested: bool,
    /// Bytes received from them in the current choke window (tit-for-tat input).
    bytes_from: u64,
    /// Bytes we finished sending to them in the current choke window.
    bytes_to: u64,
    /// Blocks we have requested from them and not yet received.
    outstanding: BTreeSet<BlockId>,
}

impl Neighbour {
    fn new() -> Self {
        Neighbour {
            am_choking: true,
            peer_choking: true,
            ..Default::default()
        }
    }
}

/// A BitTorrent participant. Node 0 is the seed and also answers tracker
/// announces.
#[derive(Debug, Clone)]
pub struct BitTorrentNode {
    id: NodeId,
    cfg: BitTorrentConfig,
    have: BlockBitmap,
    /// Number of blocks still missing from each piece.
    piece_missing: Vec<u32>,
    neighbours: BTreeMap<NodeId, Neighbour>,
    /// Blocks requested anywhere (avoid duplicate requests before endgame).
    in_flight: BTreeSet<BlockId>,
    /// Tracker state (only used on node 0): every node that has announced.
    swarm: Vec<NodeId>,
    optimistic: Option<NodeId>,
    /// Download metrics.
    completed_at: Option<f64>,
    arrival_times: Vec<f64>,
    duplicates: u64,
    useful_bytes: u64,
}

impl BitTorrentNode {
    /// Creates a node; node 0 is the seed/tracker.
    pub fn new(id: NodeId, cfg: BitTorrentConfig) -> Self {
        let n = cfg.file.num_blocks();
        let num_pieces = n.div_ceil(cfg.piece_blocks);
        let piece_missing = if id == NodeId(0) {
            vec![0; num_pieces as usize]
        } else {
            (0..num_pieces)
                .map(|p| {
                    let start = p * cfg.piece_blocks;
                    (cfg.piece_blocks).min(n - start)
                })
                .collect()
        };
        let have = if id == NodeId(0) {
            BlockBitmap::full(n)
        } else {
            BlockBitmap::new(n)
        };
        BitTorrentNode {
            id,
            cfg,
            have,
            piece_missing,
            neighbours: BTreeMap::new(),
            in_flight: BTreeSet::new(),
            swarm: Vec::new(),
            optimistic: None,
            completed_at: None,
            arrival_times: Vec::new(),
            duplicates: 0,
            useful_bytes: 0,
        }
    }

    /// True if this node is the initial seed.
    pub fn is_seed(&self) -> bool {
        self.id == NodeId(0)
    }

    /// Completion time in seconds, if the download finished.
    pub fn completed_at(&self) -> Option<f64> {
        self.completed_at
    }

    /// Arrival times of useful blocks (seconds), in arrival order.
    pub fn arrival_times(&self) -> &[f64] {
        &self.arrival_times
    }

    /// Number of duplicate block receipts.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Number of blocks currently held.
    pub fn blocks_held(&self) -> u32 {
        self.have.count()
    }

    fn piece_of(&self, block: BlockId) -> u32 {
        block.0 / self.cfg.piece_blocks
    }

    /// Pieces this node has fully downloaded (only these may be shared onward).
    fn bitfield(&self) -> Vec<u32> {
        self.piece_missing
            .iter()
            .enumerate()
            .filter(|(_, &missing)| missing == 0)
            .map(|(p, _)| p as u32)
            .collect()
    }

    fn download_done(&self) -> bool {
        self.have.is_full()
    }

    fn piece_rarity(&self, piece: u32) -> usize {
        self.neighbours
            .values()
            .filter(|n| n.has_pieces.contains(&piece))
            .count()
    }

    /// Blocks of `piece` that we are missing and that are not in flight.
    fn wanted_blocks_of_piece(&self, piece: u32) -> Vec<BlockId> {
        let start = piece * self.cfg.piece_blocks;
        let end = (start + self.cfg.piece_blocks).min(self.cfg.file.num_blocks());
        (start..end)
            .map(BlockId)
            .filter(|b| !self.have.contains(*b) && !self.in_flight.contains(b))
            .collect()
    }

    /// Issues rarest-first requests to every neighbour that has unchoked us,
    /// keeping the hard-coded number of requests outstanding per peer.
    fn issue_requests(&mut self, ctx: &mut Ctx<'_, Self>) {
        if self.download_done() {
            return;
        }
        let peers: Vec<NodeId> = self.neighbours.keys().copied().collect();
        for peer in peers {
            self.issue_requests_to(ctx, peer);
        }
    }

    fn issue_requests_to(&mut self, ctx: &mut Ctx<'_, Self>, peer: NodeId) {
        if self.download_done() {
            return;
        }
        let Some(n) = self.neighbours.get(&peer) else {
            return;
        };
        if n.peer_choking || n.outstanding.len() >= self.cfg.outstanding_per_peer {
            return;
        }
        let want = self.cfg.outstanding_per_peer - n.outstanding.len();
        // Candidate pieces: the peer has completed them, we still need blocks
        // from them. Pieces are ranked strictly rarest-first with a random
        // tie-break; sub-piece blocks are then requested in order.
        let mut pieces: Vec<(bool, usize, u64, u32)> = {
            let candidate_pieces: Vec<u32> = n.has_pieces.iter().copied().collect();
            let rng: &mut StdRng = ctx.rng();
            candidate_pieces
                .into_iter()
                .map(|p| (false, 0usize, rng.gen::<u64>(), p))
                .collect()
        };
        for entry in &mut pieces {
            let piece = entry.3;
            // Strict priority: finish partially downloaded pieces first so they
            // become shareable, then go rarest-first among untouched pieces.
            let total = self
                .cfg
                .piece_blocks
                .min(self.cfg.file.num_blocks() - piece * self.cfg.piece_blocks);
            let missing = self.piece_missing[piece as usize];
            entry.0 = missing == total; // false (=first) when partially done
            entry.1 = self.piece_rarity(piece);
        }
        pieces.sort_unstable_by_key(|(untouched, r, t, _)| (*untouched, *r, *t));
        let mut chosen: Vec<BlockId> = Vec::new();
        for (_, _, _, piece) in pieces {
            if chosen.len() >= want {
                break;
            }
            for b in self.wanted_blocks_of_piece(piece) {
                if chosen.len() >= want {
                    break;
                }
                chosen.push(b);
            }
        }
        if chosen.is_empty() {
            return;
        }
        let n = self.neighbours.get_mut(&peer).expect("checked above");
        for &b in &chosen {
            n.outstanding.insert(b);
            self.in_flight.insert(b);
        }
        ctx.send(peer, BtMsg::Request { blocks: chosen });
    }

    /// Recomputes the choke set: the top uploaders (for a downloader) or top
    /// downloaders (for the seed) get the regular slots; everyone else is
    /// choked except the optimistic unchoke.
    fn recompute_chokes(&mut self, ctx: &mut Ctx<'_, Self>) {
        let mut ranked: Vec<(u64, u64, NodeId)> = {
            let rng: &mut StdRng = ctx.rng();
            self.neighbours
                .iter()
                .map(|(&peer, n)| {
                    let score = if self.is_seed() || self.download_done() {
                        n.bytes_to // Seeds reward fast downloaders.
                    } else {
                        n.bytes_from // Leechers reciprocate good uploaders.
                    };
                    // Random tie-break so idle periods do not always favour the
                    // same (lowest-id) peers.
                    (score, rng.gen::<u64>(), peer)
                })
                .collect()
        };
        ranked.sort_unstable_by_key(|(score, tie, _)| (std::cmp::Reverse(*score), *tie));
        let unchoked: BTreeSet<NodeId> = ranked
            .iter()
            .take(self.cfg.upload_slots)
            .map(|(_, _, p)| *p)
            .chain(self.optimistic)
            .collect();
        let peers: Vec<NodeId> = self.neighbours.keys().copied().collect();
        for peer in peers {
            let n = self
                .neighbours
                .get_mut(&peer)
                .expect("iterating existing keys");
            let should_choke = !unchoked.contains(&peer);
            if n.am_choking != should_choke {
                n.am_choking = should_choke;
                ctx.send(
                    peer,
                    if should_choke {
                        BtMsg::Choke
                    } else {
                        BtMsg::Unchoke
                    },
                );
            }
            // Reset the tit-for-tat window.
            n.bytes_from = 0;
            n.bytes_to = 0;
        }
    }

    fn rotate_optimistic(&mut self, ctx: &mut Ctx<'_, Self>) {
        let choked: Vec<NodeId> = self
            .neighbours
            .iter()
            .filter(|(_, n)| n.am_choking)
            .map(|(&p, _)| p)
            .collect();
        self.optimistic = {
            let rng: &mut StdRng = ctx.rng();
            choked.choose(rng).copied()
        };
        if let Some(peer) = self.optimistic {
            let n = self
                .neighbours
                .get_mut(&peer)
                .expect("chosen from existing");
            if n.am_choking {
                n.am_choking = false;
                ctx.send(peer, BtMsg::Unchoke);
            }
        }
    }

    /// Unchokes `peer` immediately if we still have a free regular slot.
    fn greedy_unchoke(&mut self, ctx: &mut Ctx<'_, Self>, peer: NodeId) {
        let unchoked = self.neighbours.values().filter(|n| !n.am_choking).count();
        if unchoked >= self.cfg.upload_slots {
            return;
        }
        if let Some(n) = self.neighbours.get_mut(&peer) {
            if n.am_choking {
                n.am_choking = false;
                ctx.send(peer, BtMsg::Unchoke);
            }
        }
    }

    fn connect_to(&mut self, ctx: &mut Ctx<'_, Self>, peer: NodeId) {
        if peer == self.id
            || self.neighbours.contains_key(&peer)
            || self.neighbours.len() >= self.cfg.max_connections
        {
            return;
        }
        self.neighbours.insert(peer, Neighbour::new());
        ctx.send(
            peer,
            BtMsg::Handshake {
                bitfield: self.bitfield(),
            },
        );
    }

    fn note_peer_pieces(&mut self, ctx: &mut Ctx<'_, Self>, peer: NodeId, pieces: &[u32]) {
        let mut becomes_interesting = false;
        let missing: Vec<bool> = pieces
            .iter()
            .map(|&p| self.piece_missing.get(p as usize).copied().unwrap_or(0) > 0)
            .collect();
        if let Some(n) = self.neighbours.get_mut(&peer) {
            for (&p, &still_missing) in pieces.iter().zip(missing.iter()) {
                n.has_pieces.insert(p);
                if still_missing {
                    becomes_interesting = true;
                }
            }
            if becomes_interesting && !n.am_interested {
                n.am_interested = true;
                ctx.send(peer, BtMsg::Interested);
            }
        }
        if becomes_interesting {
            self.issue_requests_to(ctx, peer);
        }
    }
}

impl Protocol for BitTorrentNode {
    type Msg = BtMsg;
    type Timer = BtTimer;

    fn on_init(&mut self, ctx: &mut Ctx<'_, Self>) {
        if self.is_seed() {
            self.swarm.push(self.id);
        } else {
            ctx.send(NodeId(0), BtMsg::TrackerRequest);
        }
        // The first choke evaluation happens soon after start-up (real clients
        // unchoke interested peers as soon as slots are free); subsequent ones
        // follow the standard 10 s / 30 s cadence.
        ctx.set_timer(SimDuration::from_secs(1), BtTimer::Choke);
        ctx.set_timer(SimDuration::from_secs(5), BtTimer::Optimistic);
        ctx.set_timer(SimDuration::from_secs(2), BtTimer::Keepalive);
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: BtMsg) {
        match msg {
            BtMsg::TrackerRequest => {
                // Only the tracker (node 0) handles announces.
                if !self.is_seed() {
                    return;
                }
                let mut peers = self.swarm.clone();
                {
                    let rng: &mut StdRng = ctx.rng();
                    peers.shuffle(rng);
                }
                peers.truncate(self.cfg.tracker_peers);
                if !self.swarm.contains(&from) {
                    self.swarm.push(from);
                }
                ctx.send(from, BtMsg::TrackerResponse { peers });
            }
            BtMsg::TrackerResponse { peers } => {
                for peer in peers {
                    self.connect_to(ctx, peer);
                }
            }
            BtMsg::Handshake { bitfield } => {
                // Accept the connection (BitTorrent accepts beyond its own
                // initiation cap as long as slots remain).
                if !self.neighbours.contains_key(&from)
                    && self.neighbours.len() < self.cfg.max_connections * 2
                {
                    self.neighbours.insert(from, Neighbour::new());
                }
                if self.neighbours.contains_key(&from) {
                    ctx.send(
                        from,
                        BtMsg::HandshakeAck {
                            bitfield: self.bitfield(),
                        },
                    );
                    self.note_peer_pieces(ctx, from, &bitfield);
                    self.greedy_unchoke(ctx, from);
                }
            }
            BtMsg::HandshakeAck { bitfield } => {
                self.note_peer_pieces(ctx, from, &bitfield);
                self.greedy_unchoke(ctx, from);
            }
            BtMsg::Have { piece } => {
                self.note_peer_pieces(ctx, from, &[piece]);
            }
            BtMsg::Interested | BtMsg::NotInterested => {
                // Interest only matters for slot allocation refinements we do
                // not model; recorded implicitly through requests.
            }
            BtMsg::Choke => {
                if let Some(n) = self.neighbours.get_mut(&from) {
                    n.peer_choking = true;
                    // Outstanding requests to a choking peer are abandoned.
                    for b in std::mem::take(&mut n.outstanding) {
                        self.in_flight.remove(&b);
                    }
                }
            }
            BtMsg::Unchoke => {
                if let Some(n) = self.neighbours.get_mut(&from) {
                    n.peer_choking = false;
                }
                self.issue_requests_to(ctx, from);
            }
            BtMsg::Request { blocks } => {
                let serve = self
                    .neighbours
                    .get(&from)
                    .map(|n| !n.am_choking)
                    .unwrap_or(false);
                if !serve {
                    return;
                }
                for block in blocks {
                    let piece_complete = self
                        .piece_missing
                        .get(self.piece_of(block) as usize)
                        .map(|&m| m == 0)
                        .unwrap_or(false);
                    if piece_complete && self.have.contains(block) {
                        let bytes = u64::from(self.cfg.file.block_size(block));
                        ctx.queue_block(from, block, bytes);
                    }
                }
            }
        }
    }

    fn on_block_received(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, receipt: BlockReceipt) {
        let block = receipt.block;
        let duplicate = self.have.contains(block);
        self.in_flight.remove(&block);
        if let Some(n) = self.neighbours.get_mut(&from) {
            n.outstanding.remove(&block);
            n.bytes_from += receipt.bytes;
        }
        if duplicate {
            self.duplicates += 1;
        } else {
            self.have.insert(block);
            self.arrival_times.push(ctx.now().as_secs_f64());
            self.useful_bytes += receipt.bytes;
            let piece = self.piece_of(block);
            let missing = &mut self.piece_missing[piece as usize];
            *missing = missing.saturating_sub(1);
            if *missing == 0 {
                // A completed piece may be announced and shared onward: the
                // classic `Have` flood, one identical message per neighbour.
                ctx.send_to_many(self.neighbours.keys().copied(), &BtMsg::Have { piece });
            }
            if self.download_done() && self.completed_at.is_none() {
                self.completed_at = Some(ctx.now().as_secs_f64());
            }
        }
        self.issue_requests_to(ctx, from);
    }

    fn on_block_sent(&mut self, _ctx: &mut Ctx<'_, Self>, to: NodeId, block: BlockId) {
        let bytes = u64::from(self.cfg.file.block_size(block));
        if let Some(n) = self.neighbours.get_mut(&to) {
            n.bytes_to += bytes;
        }
    }

    fn on_peer_failed(&mut self, ctx: &mut Ctx<'_, Self>, peer: NodeId) {
        // Connection reset: forget the neighbour and free its request slots
        // so the blocks become requestable from the survivors.
        if let Some(n) = self.neighbours.remove(&peer) {
            for b in n.outstanding {
                self.in_flight.remove(&b);
            }
        }
        if self.optimistic == Some(peer) {
            self.optimistic = None;
        }
        // The tracker stops handing out the dead peer.
        self.swarm.retain(|&p| p != peer);
        self.issue_requests(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: BtTimer) {
        match timer {
            BtTimer::Choke => {
                self.recompute_chokes(ctx);
                ctx.set_timer(self.cfg.choke_interval, BtTimer::Choke);
            }
            BtTimer::Optimistic => {
                self.rotate_optimistic(ctx);
                ctx.set_timer(self.cfg.optimistic_interval, BtTimer::Optimistic);
            }
            BtTimer::Keepalive => {
                // Refresh requests (lost opportunities due to choke changes) and
                // re-announce to the tracker if we are starved of neighbours.
                self.issue_requests(ctx);
                if !self.is_seed() && self.neighbours.len() < self.cfg.max_connections / 2 {
                    ctx.send(NodeId(0), BtMsg::TrackerRequest);
                }
                ctx.set_timer(SimDuration::from_secs(2), BtTimer::Keepalive);
            }
        }
    }

    fn is_complete(&self) -> bool {
        self.is_seed() || self.download_done()
    }

    fn probe_stats(&self) -> ProbeStats {
        // The BitTorrent mesh is symmetric: every neighbour is both a
        // potential sender and a potential receiver.
        ProbeStats {
            useful_bytes: self.useful_bytes,
            useful_blocks: self.arrival_times.len() as u64,
            duplicate_blocks: self.duplicates,
            senders: self.neighbours.len(),
            receivers: self.neighbours.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_starts_full_and_leechers_empty() {
        let cfg = BitTorrentConfig::new(FileSpec::new(160 * 1024, 16 * 1024));
        let seed = BitTorrentNode::new(NodeId(0), cfg.clone());
        let leech = BitTorrentNode::new(NodeId(3), cfg);
        assert!(seed.is_seed());
        assert!(seed.is_complete());
        assert_eq!(seed.blocks_held(), 10);
        assert!(!leech.is_complete());
        assert_eq!(leech.blocks_held(), 0);
    }

    #[test]
    fn wire_sizes_are_reasonable() {
        let bf = BtMsg::Handshake {
            bitfield: (0..64).collect(),
        };
        assert_eq!(bf.wire_size(), 9 + 4 + 32);
        let req = BtMsg::Request {
            blocks: vec![BlockId(1), BlockId(2)],
        };
        assert_eq!(req.wire_size(), 9 + 8);
    }

    #[test]
    fn pieces_group_blocks_and_gate_sharing() {
        let cfg = BitTorrentConfig::new(FileSpec::new(512 * 1024, 16 * 1024));
        let seed = BitTorrentNode::new(NodeId(0), cfg.clone());
        // 32 blocks, 16 per piece -> 2 pieces, all complete at the seed.
        assert_eq!(seed.bitfield(), vec![0, 1]);
        let leech = BitTorrentNode::new(NodeId(1), cfg);
        assert!(leech.bitfield().is_empty());
        assert_eq!(leech.piece_missing, vec![16, 16]);
        assert_eq!(leech.wanted_blocks_of_piece(1).len(), 16);
    }

    #[test]
    fn defaults_match_bittorrent_constants() {
        let cfg = BitTorrentConfig::new(FileSpec::from_mb_kb(1, 16));
        assert_eq!(cfg.upload_slots, 4);
        assert_eq!(cfg.outstanding_per_peer, 5);
        assert_eq!(cfg.choke_interval, SimDuration::from_secs(10));
        assert_eq!(cfg.optimistic_interval, SimDuration::from_secs(30));
    }
}
