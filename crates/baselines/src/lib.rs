//! `baselines` — the comparison systems of the paper's evaluation.
//!
//! The paper positions Bullet′ against three deployed systems (Figs 4, 5 and
//! 14); each is reproduced here as a protocol over the same [`netsim`]
//! emulator so every system sees identical network conditions:
//!
//! * [`bittorrent`] — tracker-coordinated swarming with tit-for-tat choking,
//!   rarest-first piece selection, and hard-coded constants everywhere;
//! * [`bullet_orig`] — the original Bullet (SOSP '03): RanSub-discovered mesh
//!   with fixed peer sets, fixed outstanding windows and random requests;
//! * [`splitstream`] — an interior-node-disjoint forest of stripe trees fed
//!   by pure push.

pub mod bittorrent;
pub mod bullet_orig;
pub mod splitstream;

pub use bittorrent::{BitTorrentConfig, BitTorrentNode, BtMsg, BtTimer};
pub use bullet_orig::bullet_config;
pub use splitstream::{SplitStreamNode, SsMsg, SsTimer, StripeForest};

#[cfg(test)]
mod end_to_end {
    use super::*;
    use desim::{RngFactory, SimDuration};
    use dissem_codec::FileSpec;
    use netsim::{topology, Network, NodeId, Runner, StopReason};

    #[test]
    fn bittorrent_swarm_completes_and_benefits_from_swarming() {
        let rng = RngFactory::new(31);
        let topo = topology::modelnet_mesh(10, 0.005, &rng);
        let file = FileSpec::new(512 * 1024, 16 * 1024);
        let cfg = BitTorrentConfig::new(file);
        let nodes: Vec<BitTorrentNode> = (0..10)
            .map(|i| BitTorrentNode::new(NodeId(i), cfg.clone()))
            .collect();
        let mut runner = Runner::new(Network::new(topo), nodes, &rng);
        runner.exempt_from_completion(NodeId(0));
        let report = runner.run(SimDuration::from_secs(3_600));
        assert_eq!(report.reason, StopReason::AllComplete, "{report:?}");
        for node in runner.nodes().iter().skip(1) {
            assert_eq!(node.blocks_held(), 32);
            assert!(node.completed_at().is_some());
        }
        // Leechers must have uploaded to each other: the swarm's total
        // received bytes exceed what the seed alone pushed out.
        let seed_out = runner.network().traffic(NodeId(0)).data_bytes_out;
        let total_in: u64 = (1..10)
            .map(|i| runner.network().traffic(NodeId(i)).data_bytes_in)
            .sum();
        assert!(
            total_in > seed_out,
            "peers should exchange data among themselves (seed {seed_out}, total {total_in})"
        );
    }

    #[test]
    fn bittorrent_runs_are_deterministic() {
        let run = |seed: u64| {
            let rng = RngFactory::new(seed);
            let topo = topology::modelnet_mesh(8, 0.01, &rng);
            let cfg = BitTorrentConfig::new(FileSpec::new(256 * 1024, 16 * 1024));
            let nodes: Vec<BitTorrentNode> = (0..8)
                .map(|i| BitTorrentNode::new(NodeId(i), cfg.clone()))
                .collect();
            let mut runner = Runner::new(Network::new(topo), nodes, &rng);
            runner.exempt_from_completion(NodeId(0));
            runner.run(SimDuration::from_secs(3_600)).completion_secs
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn all_three_baselines_complete_on_the_same_topology() {
        let seed = 77;
        let file = FileSpec::new(256 * 1024, 16 * 1024);

        // BitTorrent.
        let rng = RngFactory::new(seed);
        let topo = topology::modelnet_mesh(8, 0.01, &rng);
        let cfg = BitTorrentConfig::new(file);
        let nodes: Vec<BitTorrentNode> = (0..8)
            .map(|i| BitTorrentNode::new(NodeId(i), cfg.clone()))
            .collect();
        let mut bt = Runner::new(Network::new(topo), nodes, &rng);
        bt.exempt_from_completion(NodeId(0));
        assert_eq!(
            bt.run(SimDuration::from_secs(3_600)).reason,
            StopReason::AllComplete
        );

        // Original Bullet.
        let rng = RngFactory::new(seed);
        let topo = topology::modelnet_mesh(8, 0.01, &rng);
        let mut bl = bullet_orig::build_runner(topo, file, &rng);
        assert_eq!(
            bl.run(SimDuration::from_secs(3_600)).reason,
            StopReason::AllComplete
        );

        // SplitStream.
        let rng = RngFactory::new(seed);
        let topo = topology::modelnet_mesh(8, 0.01, &rng);
        let mut ss = splitstream::build_runner(topo, file, &rng);
        assert_eq!(
            ss.run(SimDuration::from_secs(3_600)).reason,
            StopReason::AllComplete
        );
    }
}
