//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of proptest the workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, `any::<T>()`, integer-range
//! and simple regex-string strategies, `proptest::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` assertions.
//!
//! Differences from the real crate, by design:
//!
//! * **Deterministic**: every run derives its RNG from the test's name, so
//!   failures reproduce exactly — there is no environment-dependent entropy.
//! * **No shrinking**: a failing case panics with its case index; rerunning
//!   reproduces it because generation is deterministic.
//! * Default case count is 64 (not 256) to keep the tier-1 suite fast; use
//!   `ProptestConfig::with_cases` to override either way.

use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::{any, Any, Strategy};

/// The RNG handed to strategies (the workspace's deterministic `StdRng`).
pub type TestRng = rand::rngs::StdRng;

/// Subset of proptest's run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Builds the per-test deterministic RNG: FNV-1a over the test name mixed
/// with the case index.
pub fn rng_for_case(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig, Strategy,
    };
}

/// Asserts inside a property body (plain `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The property-test macro: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that generates `cases` deterministic inputs and runs
/// the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::rng_for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(
                    #[allow(unused_mut)]
                    let mut $arg = $crate::Strategy::generate(&($strat), &mut __rng);
                )+
                $body
            }
        }
    )*};
}
