//! Collection strategies (subset of `proptest::collection`).

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Accepted size arguments for [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange {
            min: lo,
            max_exclusive: hi + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose elements come from `element` and whose length is
/// drawn uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
