//! Value-generation strategies.

use crate::TestRng;
use rand::distributions::uniform::SampleUniform;
use rand::distributions::{Distribution, Standard};
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + PartialOrd + Copy,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + PartialOrd + Copy,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

/// Tuples of strategies are strategies over tuples, exactly as in the real
/// crate — elements generate left to right.
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

/// The full-domain strategy for `T` (proptest's `any::<T>()`).
pub fn any<T>() -> Any<T>
where
    Standard: Distribution<T>,
{
    Any(PhantomData)
}

impl<T> Strategy for Any<T>
where
    Standard: Distribution<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// String strategies from a pattern literal, e.g. `"[a-z]{1,12}"`.
///
/// Supports the tiny regex subset the workspace uses: a sequence of atoms,
/// where an atom is a literal character or a character class of single chars
/// and ranges (`[a-z0-9_]`), optionally followed by `{n}` or `{m,n}`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let set: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed '[' in pattern {self:?}"))
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j], chars[j + 2]);
                            assert!(lo <= hi, "bad range in pattern {self:?}");
                            set.extend((lo..=hi).filter(|c| c.is_ascii()));
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                }
                '{' | '}' | ']' | '*' | '+' | '?' | '|' | '(' | ')' =>

                    panic!("unsupported regex construct {:?} in pattern {self:?} (vendored proptest subset)", chars[i]),
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern {self:?}"))
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad repeat count"),
                        n.trim().parse::<usize>().expect("bad repeat count"),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().expect("bad repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(!set.is_empty(), "empty character class in pattern {self:?}");
            let count = rng.gen_range(lo..=hi);
            for _ in 0..count {
                out.push(set[rng.gen_range(0..set.len())]);
            }
        }
        out
    }
}
