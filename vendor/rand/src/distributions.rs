//! Distributions (subset of `rand::distributions`).

use crate::{Rng, RngCore};
use std::marker::PhantomData;

/// Types that can produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "canonical" uniform distribution over a type's natural domain
/// (full integer range, `[0, 1)` for floats).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with 53 bits of precision, as in `rand 0.8`.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Iterator returned by [`Rng::sample_iter`].
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: PhantomData<fn() -> T>,
}

impl<D, R, T> DistIter<D, R, T> {
    pub(crate) fn new(distr: D, rng: R) -> Self {
        DistIter {
            distr,
            rng,
            _marker: PhantomData,
        }
    }
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: Distribution<T>,
    R: RngCore,
{
    type Item = T;

    #[inline]
    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

pub mod uniform {
    //! Uniform sampling over ranges (subset of `rand::distributions::uniform`).

    use crate::distributions::Distribution;
    use crate::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be uniformly sampled from a range.
    pub trait SampleUniform: Sized {
        /// Uniform draw from `[low, high)`. `high` is exclusive.
        fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        /// Uniform draw from `[low, high]`, both ends inclusive.
        fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    /// Range-shaped arguments accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range called with empty range");
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            assert!(low <= high, "gen_range called with empty range");
            T::sample_inclusive(rng, low, high)
        }
    }

    macro_rules! uniform_uint {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let span = (high as u64) - (low as u64);
                    // Debiased multiply-shift (Lemire); span > 0 by caller check.
                    let mut x = rng.next_u64();
                    let mut m = (x as u128).wrapping_mul(span as u128);
                    let mut lo = m as u64;
                    if lo < span {
                        let t = span.wrapping_neg() % span;
                        while lo < t {
                            x = rng.next_u64();
                            m = (x as u128).wrapping_mul(span as u128);
                            lo = m as u64;
                        }
                    }
                    low + ((m >> 64) as u64 as $t)
                }
                #[inline]
                fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    if high == <$t>::MAX {
                        if low == <$t>::MIN {
                            return rng.next_u64() as $t;
                        }
                        return Self::sample_half_open(rng, low - 1, high) + 1;
                    }
                    Self::sample_half_open(rng, low, high + 1)
                }
            }
        )*};
    }
    uniform_uint!(u8, u16, u32, u64, usize);

    macro_rules! uniform_int {
        ($($t:ty => $u:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let span = (high as $u).wrapping_sub(low as $u);
                    let offset = <u64 as SampleUniform>::sample_half_open(rng, 0, span as u64) as $u;
                    ((low as $u).wrapping_add(offset)) as $t
                }
                #[inline]
                fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    if high == <$t>::MAX {
                        if low == <$t>::MIN {
                            return rng.next_u64() as $t;
                        }
                        return Self::sample_half_open(rng, low - 1, high) + 1;
                    }
                    Self::sample_half_open(rng, low, high + 1)
                }
            }
        )*};
    }
    uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let unit: $t = crate::Standard.sample(rng);
                    let v = low + unit * (high - low);
                    // Guard against rounding up to the excluded endpoint.
                    if v >= high { <$t>::from_bits(high.to_bits() - 1) } else { v }
                }
                #[inline]
                fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    let unit: $t = crate::Standard.sample(rng);
                    low + unit * (high - low)
                }
            }
        )*};
    }
    uniform_float!(f32, f64);
}
