//! Sequence utilities (subset of `rand::seq`).

use crate::Rng;

/// Slice extensions (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R>(&self, rng: &mut R) -> Option<&Self::Item>
    where
        R: Rng + ?Sized;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R>(&mut self, rng: &mut R)
    where
        R: Rng + ?Sized;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R>(&self, rng: &mut R) -> Option<&T>
    where
        R: Rng + ?Sized,
    {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R>(&mut self, rng: &mut R)
    where
        R: Rng + ?Sized,
    {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

pub mod index {
    //! Index sampling without replacement (subset of `rand::seq::index`).

    use crate::Rng;

    /// The sampled indices, in selection order.
    #[derive(Debug, Clone)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// True when no indices were sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Iterates the sampled indices.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.0.iter().copied()
        }

        /// Consumes into a `Vec<usize>`.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Samples `amount` distinct indices from `0..length`, uniformly.
    ///
    /// Uses a partial Fisher–Yates over a scratch index table; `length` in
    /// this workspace is at most a few thousand, so O(length) scratch is fine.
    pub fn sample<R>(rng: &mut R, length: usize, amount: usize) -> IndexVec
    where
        R: Rng + ?Sized,
    {
        assert!(
            amount <= length,
            "cannot sample {amount} distinct indices from 0..{length}"
        );
        let mut pool: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..length);
            pool.swap(i, j);
        }
        pool.truncate(amount);
        IndexVec(pool)
    }
}
