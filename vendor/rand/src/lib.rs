//! Offline, API-compatible subset of `rand` 0.8.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small slice of the `rand` API it actually uses.
//! [`rngs::StdRng`] is a deterministic xoshiro256++ generator seeded through
//! SplitMix64 — *not* the CSPRNG of the real crate, which is irrelevant here:
//! every consumer in the workspace wants reproducible simulation streams, not
//! cryptographic strength. The value-generation paths (`gen`, `gen_range`,
//! `shuffle`, …) are self-contained, so determinism holds across platforms.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value of any [`Standard`]-distributed type.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }

    /// An endless iterator of samples from `distr`, consuming the RNG.
    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: Distribution<T>,
        Self: Sized,
    {
        distributions::DistIter::new(distr, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64 exactly as
    /// `rand 0.8` does, so small seeds still differ in every seed byte.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}
