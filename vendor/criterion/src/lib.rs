//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the benchmark-harness surface the workspace uses: `criterion_group!` /
//! `criterion_main!`, benchmark groups with `sample_size` and `throughput`,
//! `bench_function` / `bench_with_input`, and `Bencher::iter`.
//!
//! Instead of criterion's statistical machinery it runs a short warm-up, then
//! `sample_size` timed samples, and prints median / min / max per benchmark.
//! That keeps `cargo bench` meaningful for relative comparisons without any
//! external dependencies.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group("bench").bench_function(id, &mut f);
        self
    }
}

/// Throughput annotation for a group (reported as MiB/s or Melem/s).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of related benchmarks sharing sample-size and throughput config.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Flushes the group (printing happens per-benchmark; kept for API parity).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            return;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let mut line = format!(
            "{}/{}: median {:>12?} (min {:?}, max {:?}, n={})",
            self.name,
            id,
            median,
            min,
            max,
            samples.len()
        );
        if let Some(tp) = self.throughput {
            let per_sec = |amount: u64| amount as f64 / median.as_secs_f64().max(1e-12);
            match tp {
                Throughput::Bytes(n) => {
                    line.push_str(&format!(" [{:.1} MiB/s]", per_sec(n) / (1024.0 * 1024.0)));
                }
                Throughput::Elements(n) => {
                    line.push_str(&format!(" [{:.2} Melem/s]", per_sec(n) / 1e6));
                }
            }
        }
        println!("{line}");
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
