//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! just what the workspace uses: `#[derive(Serialize, Deserialize)]` and
//! enough of a data model for `serde_json::to_string_pretty`. Instead of the
//! real serde visitor architecture, [`Serialize`] lowers values to a small
//! JSON-shaped [`Value`] tree that `serde_json` then renders. The derive
//! macros live in the sibling `serde_derive` crate and target this model.
//!
//! [`Deserialize`] is a marker trait only: nothing in the workspace
//! deserialises yet. Deriving it compiles and does nothing.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value tree — the serialisation data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (field order = declaration order).
    Object(Vec<(String, Value)>),
}

/// Types that can lower themselves to a [`Value`] tree.
pub trait Serialize {
    /// Lowers `self` to the serialisation data model.
    fn to_value(&self) -> Value;
}

/// Marker for types that could be deserialised (unused in this workspace).
pub trait Deserialize: Sized {}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Value::Array(vec![$($name.to_value()),+])
            }
        }
    )*};
}
ser_tuple! { (A) (A, B) (A, B, C) (A, B, C, D) }

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
