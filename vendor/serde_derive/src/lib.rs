//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! The build environment has no crates.io access, so there is no `syn` or
//! `quote`; the macros walk the raw `TokenStream` by hand. They support what
//! the workspace actually derives on — non-generic structs (named or tuple)
//! and non-generic enums with unit, tuple or struct variants — and fail with
//! a clear compile error on anything fancier.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by lowering the type to a `serde::Value` tree.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let ty = parse_type(input);
    let body = match &ty.shape {
        Shape::NamedStruct(fields) => {
            let entries = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Object(vec![{entries}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(vec![{items}])")
        }
        Shape::Enum(variants) => {
            let name = &ty.name;
            let arms = variants
                .iter()
                .map(|v| variant_arm(name, v))
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}",
        ty.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the marker trait `serde::Deserialize` (a no-op in this subset).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let ty = parse_type(input);
    format!("impl ::serde::Deserialize for {} {{}}", ty.name)
        .parse()
        .expect("generated Deserialize impl parses")
}

fn variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        VariantShape::Unit => {
            format!("{enum_name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),")
        }
        VariantShape::Tuple(1) => format!(
            "{enum_name}::{vname}(f0) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_value(f0))]),"
        ),
        VariantShape::Tuple(n) => {
            let binds = (0..*n).map(|i| format!("f{i}")).collect::<Vec<_>>().join(", ");
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{enum_name}::{vname}({binds}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Array(vec![{items}]))]),"
            )
        }
        VariantShape::Struct(fields) => {
            let binds = fields.join(", ");
            let entries = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{enum_name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Object(vec![{entries}]))]),"
            )
        }
    }
}

struct ParsedType {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn parse_type(input: TokenStream) -> ParsedType {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored subset): generic types are not supported; write a manual impl for `{name}`");
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => ParsedType {
                name,
                shape: Shape::NamedStruct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => ParsedType {
                name,
                shape: Shape::TupleStruct(count_tuple_fields(g.stream())),
            },
            _ => panic!("serde_derive: unit structs are not supported for `{name}`"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => ParsedType {
                name,
                shape: Shape::Enum(parse_variants(g.stream())),
            },
            _ => panic!("serde_derive: malformed enum `{name}`"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Advances `i` past outer attributes (`#[...]`, doc comments) and
/// visibility modifiers (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a `{ a: T, b: U }` body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("serde_derive: expected field name, found {other}"),
        }
        i += 1;
        skip_past_top_level_comma(&tokens, &mut i);
    }
    fields
}

/// Number of fields in a `(T, U, ...)` body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_past_top_level_comma(&tokens, &mut i);
    }
    count
}

/// Variants of an `enum { ... }` body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        skip_past_top_level_comma(&tokens, &mut i);
    }
    variants
}

/// Advances `i` just past the next comma that sits outside any `<...>`
/// nesting (angle brackets are plain puncts, not token groups).
fn skip_past_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}
