//! Offline subset of `serde_json`: renders the vendored serde [`Value`] tree
//! as JSON text. Only the serialisation half exists; nothing in the
//! workspace parses JSON back in.

use serde::{Serialize, Value};
use std::fmt;

/// Serialisation error (the value model is infallible; this exists only for
/// signature compatibility with the real crate).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Human-readable JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            write_seq(
                out,
                indent,
                depth,
                '[',
                ']',
                items.iter(),
                |out, item, depth| write_value(out, item, indent, depth),
            );
        }
        Value::Object(entries) => {
            write_seq(
                out,
                indent,
                depth,
                '{',
                '}',
                entries.iter(),
                |out, (k, val), depth| {
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, val, indent, depth);
                },
            );
        }
    }
}

fn write_seq<I, T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: I,
    mut write_item: impl FnMut(&mut String, T, usize),
) where
    I: ExactSizeIterator<Item = T>,
{
    if items.len() == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    let inner = depth + 1;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, inner);
        write_item(out, item, inner);
    }
    newline_indent(out, indent, depth);
    out.push(close);
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        // Match serde_json: integral floats keep a trailing ".0".
        if x == x.trunc() && x.abs() < 1e15 {
            out.push_str(&format!("{x:.1}"));
        } else {
            out.push_str(&x.to_string());
        }
    } else {
        // serde_json rejects these; figures never contain them, but degrade
        // gracefully rather than panic inside a formatter.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}
