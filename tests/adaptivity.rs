//! Integration tests for the paper's central claim: the adaptive mechanisms
//! (dynamic peer sets, dynamic outstanding windows, rarest-random requests)
//! hold up across network conditions where any single static choice breaks
//! down.

use bullet_repro::bullet_bench::{run_bullet_prime_with, Series};
use bullet_repro::bullet_prime::{Config, OutstandingPolicy, PeerSetPolicy, RequestStrategy};
use bullet_repro::desim::{RngFactory, SimDuration};
use bullet_repro::dissem_codec::FileSpec;
use bullet_repro::netsim::{dynamics, topology, NodeId, Topology};

const LIMIT: SimDuration = SimDuration::from_secs(7_200);

fn median_with(
    topo: Topology,
    seed: u64,
    schedule: &bullet_repro::netsim::ChangeSchedule,
    file: FileSpec,
    tweak: impl FnOnce(&mut Config),
) -> f64 {
    let rng = RngFactory::new(seed);
    let mut cfg = Config::new(file);
    tweak(&mut cfg);
    let (run, _) = run_bullet_prime_with(topo, &cfg, &rng, schedule, LIMIT);
    assert_eq!(run.unfinished, 0);
    Series::cdf("cfg", &run.times).quantile(0.5)
}

/// Fig 9's point: on a constrained-access topology more peers are *not*
/// better, and the dynamic policy must stay within striking distance of the
/// best static choice.
#[test]
fn dynamic_peering_tracks_the_best_static_choice_on_constrained_access() {
    let seed = 31;
    let file = FileSpec::from_mb_kb(2, 16);
    let small = median_with(
        topology::constrained_access(24),
        seed,
        &Vec::new(),
        file,
        |c| c.peer_policy = PeerSetPolicy::Fixed(6),
    );
    let large = median_with(
        topology::constrained_access(24),
        seed,
        &Vec::new(),
        file,
        |c| c.peer_policy = PeerSetPolicy::Fixed(14),
    );
    let dynamic = median_with(
        topology::constrained_access(24),
        seed,
        &Vec::new(),
        file,
        |_| {},
    );
    let best = small.min(large);
    assert!(
        dynamic <= best * 1.35,
        "dynamic ({dynamic:.1}s) should track the best static choice ({best:.1}s)"
    );
}

/// Fig 10's point: on clean high-bandwidth-delay-product paths a tiny fixed
/// outstanding window cannot fill the pipe; the dynamic controller must beat
/// it and approach a generously sized fixed window.
#[test]
fn dynamic_outstanding_fills_high_bdp_pipes() {
    let seed = 37;
    let file = FileSpec::new(4 * 1024 * 1024, 8 * 1024);
    let mk = || {
        let rng = RngFactory::new(seed);
        topology::high_bdp_clique(12, 0.0, &rng)
    };
    let tiny = median_with(mk(), seed, &Vec::new(), file, |c| {
        c.outstanding_policy = OutstandingPolicy::Fixed(1)
    });
    let large = median_with(mk(), seed, &Vec::new(), file, |c| {
        c.outstanding_policy = OutstandingPolicy::Fixed(50)
    });
    let dynamic = median_with(mk(), seed, &Vec::new(), file, |_| {});
    assert!(
        dynamic < tiny,
        "dynamic ({dynamic:.1}s) must beat a one-block window ({tiny:.1}s) on high-BDP paths"
    );
    assert!(
        dynamic <= large * 1.5,
        "dynamic ({dynamic:.1}s) should be in the same league as a 50-block window ({large:.1}s)"
    );
}

/// Fig 12's point: when a peer's dedicated links degrade one after another,
/// having committed 50 outstanding blocks to each connection hurts the victim
/// compared with the adaptive controller.
#[test]
fn dynamic_outstanding_limits_damage_from_cascading_slowdowns() {
    let seed = 41;
    let fast = 7usize;
    let file = FileSpec::new(12 * 1024 * 1024, 8 * 1024);
    // The reduced 12 MB download lasts ~10 s at 10 Mbps, so degrade one link
    // every 2 s to reproduce the paper's "most links degraded before the
    // victim finishes" situation.
    let schedule = {
        let senders: Vec<NodeId> = (1..fast as u32).map(NodeId).collect();
        dynamics::cascading_degrade_schedule(
            &senders,
            NodeId(fast as u32),
            SimDuration::from_secs(2),
        )
    };
    let victim_time = |tweak: fn(&mut Config)| {
        let rng = RngFactory::new(seed);
        let mut cfg = Config::new(file);
        cfg.peer_policy = PeerSetPolicy::Fixed(6);
        tweak(&mut cfg);
        let (run, _) = run_bullet_prime_with(
            topology::cascade_topology(fast),
            &cfg,
            &rng,
            &schedule,
            LIMIT,
        );
        assert_eq!(run.unfinished, 0);
        // The victim is the last node and by construction the slowest.
        run.times.iter().cloned().fold(0.0f64, f64::max)
    };
    let overcommitted = victim_time(|c| c.outstanding_policy = OutstandingPolicy::Fixed(50));
    let dynamic = victim_time(|_| {});
    assert!(
        dynamic <= overcommitted * 1.05,
        "dynamic ({dynamic:.1}s) should not lose to a 50-block window ({overcommitted:.1}s) under cascading slowdowns"
    );
}

/// Fig 6's point: request ordering matters; rarest-random must not lose to
/// first-encountered, which destroys block diversity.
#[test]
fn rarest_random_requests_do_not_lose_to_first_encountered() {
    let seed = 43;
    let file = FileSpec::from_mb_kb(4, 16);
    let mk = || {
        let rng = RngFactory::new(seed);
        topology::modelnet_mesh(24, 0.03, &rng)
    };
    let first = median_with(mk(), seed, &Vec::new(), file, |c| {
        c.request_strategy = RequestStrategy::FirstEncountered
    });
    let rarest_random = median_with(mk(), seed, &Vec::new(), file, |_| {});
    assert!(
        rarest_random <= first * 1.10,
        "rarest-random ({rarest_random:.1}s) should not lose to first-encountered ({first:.1}s)"
    );
}
