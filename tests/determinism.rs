//! Workspace-level determinism regression: the whole stack — topology
//! generation, the discrete-event engine, every protocol implementation and
//! the harness — must be a pure function of the `RngFactory` seed.
//!
//! Each check runs the same experiment twice from identical seeds and
//! requires the *byte-identical* debug rendering of the result, which covers
//! every field (per-node completion times at full `f64` precision, event
//! counts, end times and stop reasons). A change that breaks this is almost
//! always an accidental source of nondeterminism (iteration over an unordered
//! map, RNG stream shared across components, time-order tie broken by
//! allocation order, ...) and would silently invalidate every figure.

use bullet_repro::bullet_bench::{run_system, SystemKind};
use bullet_repro::bullet_prime::{build_runner, build_service_runner, Config, ServiceSwarms};
use bullet_repro::desim::{RngFactory, SimDuration, SimTime};
use bullet_repro::dissem_codec::FileSpec;
use bullet_repro::netsim::{
    mbps, run_service, topology, ArrivalGen, RunReport, ServiceConfig, ServiceReport,
};

const NODES: usize = 10;
const SEED: u64 = 20050410;

fn file() -> FileSpec {
    FileSpec::new(256 * 1024, 16 * 1024)
}

fn bullet_prime_report(seed: u64) -> RunReport {
    let rng = RngFactory::new(seed);
    let topo = topology::modelnet_mesh(NODES, 0.01, &rng);
    let cfg = Config::new(file());
    let mut runner = build_runner(topo, &cfg, &rng);
    runner.run(SimDuration::from_secs(3_600))
}

#[test]
fn periodic_link_table_rebuild_does_not_change_the_run() {
    // The drift-guard hook (Runner::set_table_rebuild_interval) recomputes
    // the incrementally maintained per-link usage/ceiling sums exactly.
    // Rebuilding after *every* event must reproduce the default run byte for
    // byte: at experiment scale the incremental sums have not drifted enough
    // to flip any solver or fast-path decision, so the hook is purely
    // prophylactic.
    let run = |interval: u64| {
        let rng = RngFactory::new(SEED);
        let topo = topology::modelnet_mesh(NODES, 0.01, &rng);
        let cfg = Config::new(file());
        let mut runner = build_runner(topo, &cfg, &rng);
        runner.set_table_rebuild_interval(interval);
        format!("{:?}", runner.run(SimDuration::from_secs(3_600)))
    };
    let default = format!("{:?}", bullet_prime_report(SEED));
    assert_eq!(
        run(1),
        default,
        "rebuild-every-event must match the default"
    );
    assert_eq!(run(0), default, "disabled hook must match the default");
}

#[test]
fn bullet_prime_run_reports_are_byte_identical() {
    let a = format!("{:?}", bullet_prime_report(SEED));
    let b = format!("{:?}", bullet_prime_report(SEED));
    assert_eq!(a, b, "same seed must reproduce the RunReport byte for byte");

    let c = format!("{:?}", bullet_prime_report(SEED + 1));
    assert_ne!(a, c, "a different seed should not reproduce the same run");
}

fn service_report(seed: u64) -> ServiceReport {
    // A two-swarm open-system run over a shared core: arrivals, admission,
    // cohort activation, completion and retirement all on the clock.
    let rng = RngFactory::new(seed);
    let topo = topology::shared_core_mesh(16, mbps(20.0), 0.0, &rng);
    let template = Config::new(file());
    let mut runner = build_service_runner(topo, &template, &rng);
    let mut source = ServiceSwarms::new(template, &rng, (4, 6), (128 * 1024, 256 * 1024));
    let cfg = ServiceConfig {
        horizon: SimTime::from_secs_f64(600.0),
        warmup: SimTime::from_secs_f64(60.0),
        tick: SimDuration::from_secs(10),
        segment_slots: 8,
        max_arrivals: 4,
        core: None,
    };
    let gen = ArrivalGen::Trace(vec![SimTime::ZERO, SimTime::from_secs_f64(10.0)]);
    run_service(&mut runner, &cfg, &gen, &mut source, &rng)
}

#[test]
fn open_system_service_runs_are_byte_identical() {
    let a = service_report(SEED);
    let b = service_report(SEED);
    assert_eq!(
        a.canonical(),
        b.canonical(),
        "same seed must reproduce the ServiceReport byte for byte"
    );
    assert_eq!(a.admitted, 2, "both trace arrivals admitted: {a:?}");

    let c = service_report(SEED + 1);
    assert_ne!(
        a.canonical(),
        c.canonical(),
        "a different seed should not reproduce the same service run"
    );
}

#[test]
fn all_four_systems_are_deterministic() {
    for kind in SystemKind::all() {
        let run = |seed: u64| {
            let rng = RngFactory::new(seed);
            let topo = topology::modelnet_mesh(NODES, 0.01, &rng);
            run_system(
                kind,
                topo,
                file(),
                &rng,
                &Vec::new(),
                SimDuration::from_secs(3_600),
            )
        };
        let a = format!("{:?}", run(SEED));
        let b = format!("{:?}", run(SEED));
        assert_eq!(
            a,
            b,
            "{}: same seed must reproduce the run byte for byte",
            kind.label()
        );
    }
}
