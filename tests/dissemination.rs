//! Cross-crate integration tests: full dissemination runs spanning the
//! emulator, the overlay substrate, Bullet′ and the baselines.

use bullet_repro::bullet_bench::{run_bullet_prime_with, run_system, Series, SystemKind};
use bullet_repro::bullet_prime::{Config, OutstandingPolicy, PeerSetPolicy};
use bullet_repro::desim::{RngFactory, SimDuration};
use bullet_repro::dissem_codec::FileSpec;
use bullet_repro::netsim::dynamics::correlated_decrease_schedule;
use bullet_repro::netsim::{topology, NodeId};

const LIMIT: SimDuration = SimDuration::from_secs(3_600);

#[test]
fn bullet_prime_beats_the_physical_floor_but_not_by_magic() {
    let rng = RngFactory::new(1);
    let topo = topology::modelnet_mesh(20, 0.02, &rng);
    let file = FileSpec::from_mb_kb(4, 16);
    let floor = file.file_bytes as f64 / topo.node(NodeId(1)).down;
    let cfg = Config::new(file);
    let (run, _) = run_bullet_prime_with(topo, &cfg, &rng, &Vec::new(), LIMIT);
    assert_eq!(run.unfinished, 0);
    for &t in &run.times {
        assert!(
            t >= floor,
            "a receiver finished faster ({t:.1}s) than its access link allows ({floor:.1}s)"
        );
        assert!(
            t < 40.0 * floor,
            "a receiver took implausibly long: {t:.1}s"
        );
    }
}

#[test]
fn every_system_disseminates_the_same_workload() {
    let file = FileSpec::from_mb_kb(2, 16);
    for kind in SystemKind::all() {
        let rng = RngFactory::new(3);
        let topo = topology::modelnet_mesh(12, 0.01, &rng);
        let run = run_system(kind, topo, file, &rng, &Vec::new(), LIMIT);
        assert_eq!(run.times.len(), 11, "{kind:?}");
        assert_eq!(run.unfinished, 0, "{kind:?} left receivers unfinished");
    }
}

#[test]
fn cross_system_runs_share_no_state() {
    // Running two systems back to back with the same seed gives the same
    // Bullet' results as running Bullet' alone — nothing leaks through globals.
    let file = FileSpec::from_mb_kb(1, 16);
    let solo = {
        let rng = RngFactory::new(9);
        let topo = topology::modelnet_mesh(8, 0.01, &rng);
        run_system(
            SystemKind::BulletPrime,
            topo,
            file,
            &rng,
            &Vec::new(),
            LIMIT,
        )
        .times
    };
    let _noise = {
        let rng = RngFactory::new(9);
        let topo = topology::modelnet_mesh(8, 0.01, &rng);
        run_system(SystemKind::BitTorrent, topo, file, &rng, &Vec::new(), LIMIT)
    };
    let again = {
        let rng = RngFactory::new(9);
        let topo = topology::modelnet_mesh(8, 0.01, &rng);
        run_system(
            SystemKind::BulletPrime,
            topo,
            file,
            &rng,
            &Vec::new(),
            LIMIT,
        )
        .times
    };
    assert_eq!(solo, again);
}

#[test]
fn bandwidth_changes_slow_fixed_configurations_down() {
    // Under the paper's correlated-decrease scenario, a statically configured
    // Bullet' should not be faster than it was on the static network.
    let file = FileSpec::from_mb_kb(4, 16);
    let median = |dynamic: bool| {
        let rng = RngFactory::new(17);
        let topo = topology::modelnet_mesh(16, 0.02, &rng);
        let schedule = if dynamic {
            correlated_decrease_schedule(
                16,
                SimDuration::from_secs(10),
                SimDuration::from_secs(600),
                &rng,
            )
        } else {
            Vec::new()
        };
        let mut cfg = Config::new(file);
        cfg.peer_policy = PeerSetPolicy::Fixed(6);
        cfg.outstanding_policy = OutstandingPolicy::Fixed(3);
        let (run, _) = run_bullet_prime_with(topo, &cfg, &rng, &schedule, LIMIT);
        Series::cdf("x", &run.times).quantile(0.5)
    };
    let static_net = median(false);
    let dynamic_net = median(true);
    assert!(
        dynamic_net >= static_net * 0.95,
        "cumulative bandwidth cuts should not speed the download up (static {static_net:.1}s, dynamic {dynamic_net:.1}s)"
    );
}

#[test]
fn encoded_and_unencoded_bullet_prime_both_complete() {
    for encoded in [false, true] {
        let rng = RngFactory::new(23);
        let topo = topology::modelnet_mesh(10, 0.01, &rng);
        let mut cfg = Config::new(FileSpec::from_mb_kb(2, 16));
        if encoded {
            cfg.transfer_mode = bullet_repro::bullet_prime::TransferMode::Encoded { epsilon: 0.04 };
        }
        let (run, nodes) = run_bullet_prime_with(topo, &cfg, &rng, &Vec::new(), LIMIT);
        assert_eq!(run.unfinished, 0, "encoded={encoded}");
        let needed = cfg.completion_target();
        for node in nodes.iter().skip(1) {
            assert!(node.blocks_held() >= needed, "encoded={encoded}");
        }
    }
}
