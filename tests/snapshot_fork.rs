//! The snapshot/fork contract, pinned for every shipped protocol:
//! `checkpoint-at-t → resume → run-to-end` produces a [`RunReport`] whose
//! canonical form is **byte-identical** to the uninterrupted run's —
//! completion times, end time, stop reason, metrics snapshot and the
//! probe-built time series included. Checked at two split points per system:
//! mid-join (t = 2 s, the mesh is still forming) and mid-dynamics (t = 12 s,
//! after the first correlated bandwidth decrease has fired), plus a
//! fork-divergence test proving that two runners forked from one snapshot
//! share no mutable state.

use bullet_repro::baselines::{bullet_orig, splitstream, BitTorrentConfig, BitTorrentNode};
use bullet_repro::bullet_prime::{self, Config};
use bullet_repro::desim::{RngFactory, SimDuration, SimTime};
use bullet_repro::dissem_codec::FileSpec;
use bullet_repro::netsim::snapshot::ForkState;
use bullet_repro::netsim::{
    dynamics, topology, ChangeSchedule, Network, NodeId, Protocol, RunReport, Runner, StopReason,
};

const NODES: usize = 6;
const SEED: u64 = 20050410;
const LIMIT_SECS: f64 = 1800.0;
/// Mid-join split: the mesh is still forming, transfers barely started.
const MID_JOIN_SECS: f64 = 2.0;
/// Mid-dynamics split: past the first correlated decrease (period 10 s),
/// while every system is still mid-transfer.
const MID_DYNAMICS_SECS: f64 = 12.0;

fn file() -> FileSpec {
    // Large enough that every system is still mid-transfer at the 12 s
    // split (a 256 KiB file finishes in well under 20 virtual seconds at
    // this scale).
    FileSpec::new(1024 * 1024, 16 * 1024)
}

/// The §4.1 correlated-decrease schedule at test scale: first batch at 10 s,
/// so the mid-dynamics split lands after at least one change has fired.
fn schedule(rng: &RngFactory) -> ChangeSchedule {
    dynamics::correlated_decrease_schedule(
        NODES,
        SimDuration::from_secs(10),
        SimDuration::from_secs(120),
        rng,
    )
}

/// Builds one of the four systems with the dynamics schedule applied and the
/// stats probe installed (so checkpoints carry probe state too), then hands
/// the runner to `f`.
fn with_system<P, R>(build: impl Fn(&RngFactory) -> Runner<P>, f: impl FnOnce(Runner<P>) -> R) -> R
where
    P: Protocol,
{
    let rng = RngFactory::new(SEED);
    let mut runner = build(&rng);
    for (at, batch) in schedule(&rng) {
        runner.schedule_link_change(at, batch);
    }
    runner.record_timeseries(SimDuration::from_secs(2));
    f(runner)
}

/// The contract itself: run uninterrupted; run again but checkpoint at
/// `split`, drop the original, resume from the snapshot and finish. The two
/// canonical reports must be byte-identical.
fn assert_roundtrip_identical<P>(name: &str, split: f64, build: impl Fn(&RngFactory) -> Runner<P>)
where
    P: Protocol + ForkState,
    P::Msg: Clone,
{
    let straight: RunReport = with_system(&build, |mut runner| {
        runner.run_until(SimTime::from_secs_f64(LIMIT_SECS))
    });

    let staged: RunReport = with_system(&build, |mut runner| {
        let reason = runner.advance_until(SimTime::from_secs_f64(split));
        assert_eq!(
            reason,
            StopReason::TimeLimit,
            "{name}: the run ended before the {split} s split — the split is \
             not mid-run and the test would be vacuous"
        );
        let snap = runner.checkpoint();
        drop(runner); // The original must not be needed once snapshotted.
        let mut resumed = Runner::resume(snap);
        resumed.run_until(SimTime::from_secs_f64(LIMIT_SECS))
    });

    assert_eq!(
        staged.canonical(),
        straight.canonical(),
        "{name}: checkpoint at {split} s + resume diverged from the \
         uninterrupted run"
    );
    // The identity above includes the probe series; make sure it is actually
    // in play (a None == None comparison would prove nothing about probes).
    assert!(
        straight.timeseries.is_some(),
        "{name}: the probe series must be part of the compared reports"
    );
}

fn build_bullet_prime(rng: &RngFactory) -> Runner<bullet_prime::BulletPrimeNode> {
    let topo = topology::modelnet_mesh(NODES, 0.03, rng);
    bullet_prime::build_runner(topo, &Config::new(file()), rng)
}

// Original Bullet is Bullet′ pinned to the SOSP '03 parameters
// (`bullet_config`), so its runner carries the same node type.
fn build_bullet_orig(rng: &RngFactory) -> Runner<bullet_prime::BulletPrimeNode> {
    let topo = topology::modelnet_mesh(NODES, 0.03, rng);
    bullet_orig::build_runner(topo, file(), rng)
}

fn build_bittorrent(rng: &RngFactory) -> Runner<BitTorrentNode> {
    let topo = topology::modelnet_mesh(NODES, 0.03, rng);
    let cfg = BitTorrentConfig::new(file());
    let nodes: Vec<BitTorrentNode> = (0..NODES as u32)
        .map(|i| BitTorrentNode::new(NodeId(i), cfg.clone()))
        .collect();
    let mut runner = Runner::new(Network::new(topo), nodes, rng);
    runner.exempt_from_completion(NodeId(0));
    runner
}

fn build_splitstream(rng: &RngFactory) -> Runner<splitstream::SplitStreamNode> {
    let topo = topology::modelnet_mesh(NODES, 0.03, rng);
    splitstream::build_runner(topo, file(), rng)
}

#[test]
fn bullet_prime_roundtrips_at_both_splits() {
    assert_roundtrip_identical("BulletPrime", MID_JOIN_SECS, build_bullet_prime);
    assert_roundtrip_identical("BulletPrime", MID_DYNAMICS_SECS, build_bullet_prime);
}

#[test]
fn bullet_original_roundtrips_at_both_splits() {
    assert_roundtrip_identical("Bullet", MID_JOIN_SECS, build_bullet_orig);
    assert_roundtrip_identical("Bullet", MID_DYNAMICS_SECS, build_bullet_orig);
}

#[test]
fn bittorrent_roundtrips_at_both_splits() {
    assert_roundtrip_identical("BitTorrent", MID_JOIN_SECS, build_bittorrent);
    assert_roundtrip_identical("BitTorrent", MID_DYNAMICS_SECS, build_bittorrent);
}

#[test]
fn splitstream_roundtrips_at_both_splits() {
    assert_roundtrip_identical("SplitStream", MID_JOIN_SECS, build_splitstream);
    assert_roundtrip_identical("SplitStream", MID_DYNAMICS_SECS, build_splitstream);
}

#[test]
fn forks_from_one_snapshot_share_no_mutable_state() {
    // One warm snapshot; two different post-split dynamics. If forks shared
    // any mutable state (protocol maps, RNG streams, the flow table, probe
    // buffers), running one would perturb the other — so run the "quiet"
    // variant, then the "harsh" variant, then the "quiet" variant again, and
    // demand the two quiet runs agree while the harsh one differs.
    let rng = RngFactory::new(SEED);
    let mut runner = build_bullet_prime(&rng);
    runner.record_timeseries(SimDuration::from_secs(2));
    runner.advance_until(SimTime::from_secs_f64(10.0));
    let snap = runner.checkpoint();

    let quiet = |snap: &_| {
        let mut forked: Runner<bullet_prime::BulletPrimeNode> = Runner::resume(Clone::clone(snap));
        forked.run_until(SimTime::from_secs_f64(LIMIT_SECS))
    };
    let harsh = |snap: &_| {
        let mut forked: Runner<bullet_prime::BulletPrimeNode> = Runner::resume(Clone::clone(snap));
        let rng = RngFactory::new(SEED);
        for (at, batch) in dynamics::correlated_decrease_schedule(
            NODES,
            SimDuration::from_secs(8),
            SimDuration::from_secs(120),
            &rng,
        ) {
            let shifted = at + SimDuration::from_secs(10);
            forked.schedule_link_change(shifted, batch);
        }
        forked.run_until(SimTime::from_secs_f64(LIMIT_SECS))
    };

    let quiet_before = quiet(&snap);
    let harsh_report = harsh(&snap);
    let quiet_after = quiet(&snap);

    assert_eq!(
        quiet_before.canonical(),
        quiet_after.canonical(),
        "running a sibling fork in between changed a later fork's outcome — \
         forks share mutable state"
    );
    assert_ne!(
        harsh_report.canonical(),
        quiet_before.canonical(),
        "the harsh dynamics had no effect — the divergence check is vacuous"
    );
}
