//! Protocol-trait conformance: every dissemination system in the workspace
//! must uphold the runner's lifecycle contract, not just its own unit tests.
//!
//! The reusable harness lives in `netsim::conformance`: it wraps each node in
//! an instrumented delegating adapter, drives a scripted churn scenario (one
//! crash, one later graceful leave) through the real runner, and asserts the
//! trait-level invariants — `on_init` exactly once, timers re-armed by their
//! handlers keep firing, `on_peer_failed` reaches every survivor, and
//! farewell control messages sent from `on_shutdown` are still transmitted.
//! This file instantiates it against all four systems.

use bullet_repro::baselines::{bittorrent, bullet_orig, splitstream, BitTorrentNode};
use bullet_repro::bullet_prime::{self, Config};
use bullet_repro::desim::{RngFactory, SimTime};
use bullet_repro::dissem_codec::FileSpec;
use bullet_repro::netsim::conformance::{check_lifecycle, Outcome, Scenario};
use bullet_repro::netsim::{topology, Network, NodeId, Protocol, StopReason, Topology};

const NODES: usize = 10;
const SEED: u64 = 20050410;

fn file() -> FileSpec {
    FileSpec::new(4 * 1024 * 1024, 16 * 1024)
}

/// Crash node 2 early, leave node 4 once peering is warm (the first RanSub
/// epoch lands at t = 5 s), cap well past both.
fn scenario() -> Scenario {
    Scenario {
        crash: NodeId(2),
        crash_at: SimTime::from_secs_f64(6.0),
        leave: NodeId(4),
        leave_at: SimTime::from_secs_f64(12.0),
        limit: SimTime::from_secs_f64(900.0),
    }
}

fn run_conformance<P: Protocol>(
    label: &str,
    nodes: Vec<P>,
    rng: &RngFactory,
    topo: Topology,
) -> Outcome<P> {
    check_lifecycle(label, Network::new(topo), nodes, rng, scenario())
}

#[test]
fn bullet_prime_conforms() {
    let rng = RngFactory::new(SEED);
    let topo = topology::modelnet_mesh(NODES, 0.01, &rng);
    let cfg = Config::new(file());
    let nodes = bullet_prime::build_nodes(&topo, &cfg, &rng);
    let outcome = run_conformance("bullet-prime", nodes, &rng, topo);
    // Bullet′ says goodbye: the leaver must have peered by t = 20 s and its
    // PeerClose farewells must reach the survivors.
    assert!(
        outcome.stats[4].farewell_msgs > 0,
        "the leaver should have peers to bid farewell to"
    );
    assert!(outcome.farewell_transmitted);
    // Tree repair + immediate re-peering: churn must not stop the survivors.
    assert_eq!(
        outcome.report.reason,
        StopReason::AllComplete,
        "{:?}",
        outcome.report
    );
}

#[test]
fn bullet_original_conforms() {
    let rng = RngFactory::new(SEED);
    let topo = topology::modelnet_mesh(NODES, 0.01, &rng);
    let nodes = bullet_orig::build_nodes(&topo, file(), &rng);
    let outcome = run_conformance("bullet-original", nodes, &rng, topo);
    assert_eq!(
        outcome.report.reason,
        StopReason::AllComplete,
        "{:?}",
        outcome.report
    );
}

#[test]
fn bittorrent_conforms() {
    let rng = RngFactory::new(SEED);
    let topo = topology::modelnet_mesh(NODES, 0.01, &rng);
    let cfg = bittorrent::BitTorrentConfig::new(file());
    let nodes: Vec<BitTorrentNode> = (0..NODES as u32)
        .map(|i| BitTorrentNode::new(NodeId(i), cfg.clone()))
        .collect();
    let outcome = run_conformance("bittorrent", nodes, &rng, topo);
    // BitTorrent has no goodbye protocol: a leave looks like a crash to the
    // swarm, so no farewell may be *recorded* (transmission is then vacuous).
    assert_eq!(outcome.stats[4].farewell_msgs, 0);
    assert_eq!(
        outcome.report.reason,
        StopReason::AllComplete,
        "{:?}",
        outcome.report
    );
}

#[test]
fn splitstream_conforms() {
    let rng = RngFactory::new(SEED);
    let topo = topology::modelnet_mesh(NODES, 0.01, &rng);
    let nodes = splitstream::build_nodes(&topo, file(), &rng);
    let outcome = run_conformance("splitstream", nodes, &rng, topo);
    // SplitStream upholds the lifecycle contract but has no repair: children
    // of a departed interior node lose that stripe for good, so the run is
    // not expected to reach AllComplete — that structural weakness is the
    // paper's point, not a conformance failure.
    assert_eq!(outcome.stats[4].farewell_msgs, 0);
}
