//! Smoke tests for the figure harness: every figure function runs at a tiny
//! scale, produces non-empty series with the expected legends, and renders to
//! both text and JSON.

use bullet_repro::bullet_bench::experiments;
use bullet_repro::bullet_bench::{CommonOpts, Figure};

fn tiny() -> CommonOpts {
    CommonOpts {
        nodes: Some(8),
        file_mb: Some(0.25),
        time_limit: 1800.0,
        ..CommonOpts::default()
    }
}

fn check(fig: &Figure, expected_series: usize) {
    assert_eq!(fig.series.len(), expected_series, "{}", fig.id);
    for s in &fig.series {
        assert!(
            !s.points.is_empty(),
            "{}: series {} is empty",
            fig.id,
            s.label
        );
        assert!(s.max_x().is_finite());
    }
    let text = fig.render_text(false);
    assert!(text.contains(&fig.id));
    let json = fig.to_json();
    assert!(json.contains("series"));
}

#[test]
fn figure_4_and_5_smoke() {
    check(&experiments::fig04(&tiny()), 6);
    check(&experiments::fig05(&tiny()), 4);
}

#[test]
fn figure_6_to_9_smoke() {
    check(&experiments::fig06(&tiny()), 4);
    check(&experiments::fig07(&tiny()), 4);
    let mut opts = tiny();
    opts.time_limit = 900.0;
    check(&experiments::fig08(&opts), 4);
    check(&experiments::fig09(&tiny()), 3);
}

#[test]
fn figure_10_to_12_smoke() {
    check(&experiments::fig10(&tiny()), 6);
    check(&experiments::fig11(&tiny()), 5);
    check(&experiments::fig12(&tiny()), 4);
}

#[test]
fn figure_13_to_15_smoke() {
    let f13 = experiments::fig13(&tiny());
    check(&f13, 1);
    assert!(f13.notes[0].contains("overage"));

    let mut opts = tiny();
    opts.nodes = Some(10);
    opts.file_mb = Some(1.0);
    check(&experiments::fig14(&opts), 4);
    check(&experiments::fig15(&opts), 6);
}

#[test]
fn figure_16_and_17_smoke() {
    // Slightly larger swarm so a 25%/50% crash wave leaves a healthy mesh.
    let mut opts = tiny();
    opts.nodes = Some(12);
    let f16 = experiments::fig16(&opts);
    check(&f16, 4);
    assert!(f16.series[0].label.contains("no churn"));
    assert!(f16.series[2].label.contains("25% crash"));
    let f17 = experiments::fig17(&opts);
    check(&f17, 2);
    assert!(f17.series[1].label.contains("flash crowd"));
}

#[test]
fn figure_18_and_19_smoke() {
    let f18 = experiments::fig18(&tiny());
    check(&f18, 3);
    assert!(f18.series[0].label.contains("single mesh"));
    assert!(f18.notes[0].contains("fluid max-min"));
    let mut opts = tiny();
    opts.tick = Some(1.0);
    let f19 = experiments::fig19(&opts);
    check(&f19, 4);
    assert!(f19.series[3].label.contains("cross-traffic"));
}

#[test]
fn figure_21_and_22_smoke() {
    // The open-system service figures at smoke scale: a 16-slot pool, short
    // horizon. fig21 plots five series against offered load; fig22 plots
    // three time series from the service samples.
    let mut opts = tiny();
    opts.nodes = Some(16);
    opts.time_limit = 900.0;
    let f21 = experiments::fig21(&opts);
    check(&f21, 5);
    assert!(f21.series[0].label.contains("sustained goodput"));
    assert!(f21.series[1].label.contains("p50"));
    assert!(f21.x_label.contains("offered load"));
    assert!(f21.notes.iter().any(|n| n.contains("admitted")));

    let mut opts = tiny();
    opts.nodes = Some(16);
    let f22 = experiments::fig22(&opts);
    check(&f22, 3);
    assert!(f22.series[0].label.contains("goodput"));
    assert!(f22.series[1].label.contains("in flight"));
    assert!(f22.series[2].label.contains("utilisation"));
    assert!(f22.notes.iter().any(|n| n.contains("warm swarm")));
    assert!(f22.notes.iter().any(|n| n.contains("flash crowd")));
}

#[test]
fn churn_run_completes_for_survivors_and_excludes_crashed_nodes() {
    // The acceptance scenario: 25% of the receivers crash mid-transfer.
    // Surviving Bullet' receivers must still complete, and the crashed nodes
    // must not block the all-complete stop condition.
    use bullet_repro::bullet_bench::run_bullet_prime_churn;
    use bullet_repro::bullet_prime::Config;
    use bullet_repro::desim::{RngFactory, SimDuration, SimTime};
    use bullet_repro::dissem_codec::FileSpec;
    use bullet_repro::netsim::dynamics::crash_wave_schedule;
    use bullet_repro::netsim::{topology, StopReason};

    let nodes = 12;
    let rng = RngFactory::new(20050410);
    let topo = topology::modelnet_mesh(nodes, 0.01, &rng);
    let cfg = Config::new(FileSpec::new(512 * 1024, 16 * 1024));
    let churn = crash_wave_schedule(
        nodes,
        0.25,
        SimTime::from_secs_f64(2.0),
        SimTime::from_secs_f64(6.0),
        &rng,
    );
    assert_eq!(churn.len(), 3, "25% of 11 receivers rounds to 3 victims");
    let (run, report, _) =
        run_bullet_prime_churn(topo, &cfg, &rng, &churn, SimDuration::from_secs(3_600));
    assert_eq!(
        report.reason,
        StopReason::AllComplete,
        "crashed nodes must be excluded from the stop condition: {report:?}"
    );
    assert_eq!(report.departed.iter().filter(|&&d| d).count(), 3);
    assert_eq!(run.unfinished, 0, "every surviving receiver completes");
    assert_eq!(run.times.len(), nodes - 1 - 3);
    for (i, departed) in report.departed.iter().enumerate() {
        if *departed {
            assert!(
                report.completion_secs[i].is_none(),
                "node {i} crashed mid-transfer and must not be counted complete"
            );
        }
    }
}

#[test]
fn reduced_and_full_scale_share_code_paths() {
    // `--full` only changes workload parameters, not which series are produced.
    let mut full = tiny();
    full.full = true;
    full.nodes = Some(8);
    full.file_mb = Some(0.25);
    let a = experiments::fig04(&tiny());
    let b = experiments::fig04(&full);
    assert_eq!(a.series.len(), b.series.len());
}
