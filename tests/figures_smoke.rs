//! Smoke tests for the figure harness: every figure function runs at a tiny
//! scale, produces non-empty series with the expected legends, and renders to
//! both text and JSON.

use bullet_repro::bullet_bench::experiments;
use bullet_repro::bullet_bench::{CommonOpts, Figure};

fn tiny() -> CommonOpts {
    CommonOpts {
        nodes: Some(8),
        file_mb: Some(0.25),
        time_limit: 1800.0,
        ..CommonOpts::default()
    }
}

fn check(fig: &Figure, expected_series: usize) {
    assert_eq!(fig.series.len(), expected_series, "{}", fig.id);
    for s in &fig.series {
        assert!(!s.points.is_empty(), "{}: series {} is empty", fig.id, s.label);
        assert!(s.max_x().is_finite());
    }
    let text = fig.render_text(false);
    assert!(text.contains(&fig.id));
    let json = fig.to_json();
    assert!(json.contains("series"));
}

#[test]
fn figure_4_and_5_smoke() {
    check(&experiments::fig04(&tiny()), 6);
    check(&experiments::fig05(&tiny()), 4);
}

#[test]
fn figure_6_to_9_smoke() {
    check(&experiments::fig06(&tiny()), 4);
    check(&experiments::fig07(&tiny()), 4);
    let mut opts = tiny();
    opts.time_limit = 900.0;
    check(&experiments::fig08(&opts), 4);
    check(&experiments::fig09(&tiny()), 3);
}

#[test]
fn figure_10_to_12_smoke() {
    check(&experiments::fig10(&tiny()), 6);
    check(&experiments::fig11(&tiny()), 5);
    check(&experiments::fig12(&tiny()), 4);
}

#[test]
fn figure_13_to_15_smoke() {
    let f13 = experiments::fig13(&tiny());
    check(&f13, 1);
    assert!(f13.notes[0].contains("overage"));

    let mut opts = tiny();
    opts.nodes = Some(10);
    opts.file_mb = Some(1.0);
    check(&experiments::fig14(&opts), 4);
    check(&experiments::fig15(&opts), 6);
}

#[test]
fn reduced_and_full_scale_share_code_paths() {
    // `--full` only changes workload parameters, not which series are produced.
    let mut full = tiny();
    full.full = true;
    full.nodes = Some(8);
    full.file_mb = Some(0.25);
    let a = experiments::fig04(&tiny());
    let b = experiments::fig04(&full);
    assert_eq!(a.series.len(), b.series.len());
}
