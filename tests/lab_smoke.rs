//! Smoke tests for the scenario lab: the registry covers every figure, the
//! parallel sweep executor is byte-deterministic across thread counts, the
//! probe-driven time-series scenario produces a usable series, and the
//! observability layer (trace + probe + profiler, `lab trace`) interleaves
//! with all of it without perturbing the simulation.

use bullet_repro::bullet_bench::{experiments, CommonOpts};
use bullet_repro::bullet_lab::{
    check_replay, run_serve, run_sweep, run_sweep_with, traced_run, DynamicsKind, Registry,
    Scenario, SystemSet, TopologyKind,
};
use bullet_repro::bullet_prime::{build_runner, Config};
use bullet_repro::desim::{RngFactory, SimDuration};
use bullet_repro::dissem_codec::FileSpec;
use bullet_repro::netsim::{topology, RingSink, TraceEvent};

fn tiny() -> CommonOpts {
    CommonOpts {
        nodes: Some(6),
        file_mb: Some(0.25),
        time_limit: 1800.0,
        ..CommonOpts::default()
    }
}

#[test]
fn registry_lists_every_scenario() {
    let reg = Registry::standard();
    let names = reg.names();
    let expected = [
        "fig04", "fig05", "fig05ts", "fig05w", "fig06", "fig07", "fig08", "fig09", "fig10",
        "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
        "fig21", "fig22",
    ];
    assert_eq!(names.len(), expected.len());
    for name in expected {
        let sc = reg
            .get(name)
            .unwrap_or_else(|| panic!("{name} not registered"));
        assert_eq!(sc.name, name);
        assert!(!sc.title.is_empty());
        assert!(!sc.sweep.points.is_empty());
        assert!(sc.sweep.seeds.count > 0);
    }
}

#[test]
fn four_thread_fig05_sweep_is_byte_identical_to_one_thread() {
    // The acceptance scenario: fig05 (all four systems under bandwidth
    // changes) swept across 4 seeds, at smoke scale. Every cell is an
    // independent deterministic simulation, so the merged JSON must not
    // depend on how many workers executed the cells.
    let fig05 = Scenario::new(
        "fig05",
        "overall comparison under bandwidth changes (smoke scale)",
        SystemSet::AllFour,
        TopologyKind::ModelNetMesh,
        DynamicsKind::BandwidthChanges,
        experiments::fig05,
    );
    let seeds = [20050410, 20050411, 20050412, 20050413];
    let serial = run_sweep(&fig05, &tiny(), &seeds, 1);
    let parallel = run_sweep(&fig05, &tiny(), &seeds, 4);
    assert_eq!(serial.cells.len(), 4);
    let a = serial.to_canonical_json();
    let b = parallel.to_canonical_json();
    assert!(!a.is_empty());
    assert_eq!(a, b, "thread count leaked into the sweep output");
    // The full rendering carries the per-cell wall-clock telemetry (which is
    // schedule-dependent and therefore excluded from the identity above).
    assert!(serial.to_json().contains("wall_clock_secs"));
    assert!(!a.contains("wall_clock_secs"));
    // Different seeds genuinely produce different cells (the sweep is not
    // vacuously identical).
    assert_ne!(
        serial.cells[0].figure.to_json(),
        serial.cells[1].figure.to_json(),
        "distinct seeds must differ"
    );
}

#[test]
fn fig05w_prefix_sharing_is_byte_identical_to_fresh_runs_at_any_thread_count() {
    // The snapshot/fork acceptance scenario: the fig05w sweep (three
    // dynamics variants per seed sharing one warm-up prefix) with prefix
    // sharing ON — one simulated warm-up per seed, every cell forked from
    // the checkpoint — must render canonically byte-identical to the same
    // sweep with sharing OFF (every cell simulated uninterrupted from
    // t = 0), at 1 and at 4 worker threads.
    let reg = Registry::standard();
    let sc = reg.get("fig05w").expect("registered");
    let seeds = [20050410, 20050411];

    let reference = run_sweep_with(sc, &tiny(), &seeds, 1, false).to_canonical_json();
    assert!(!reference.is_empty());
    for threads in [1, 4] {
        let shared = run_sweep_with(sc, &tiny(), &seeds, threads, true);
        assert_eq!(
            shared.to_canonical_json(),
            reference,
            "forked sweep at {threads} thread(s) diverged from the uninterrupted runs"
        );
        // One warm-up per seed (the three variants differ only by label),
        // every cell forked.
        assert_eq!(shared.prefix_cells, seeds.len());
        assert_eq!(shared.forked_cells, 3 * seeds.len());
        assert!(
            shared.warmup_secs_saved > 0.0,
            "sharing must actually save warm-up wall clock"
        );
    }
    let fresh_parallel = run_sweep_with(sc, &tiny(), &seeds, 4, false);
    assert_eq!(fresh_parallel.to_canonical_json(), reference);

    // The variants genuinely diverge after the split (same seed, different
    // post-warm-up dynamics), or the identity above would be vacuous.
    let shared = run_sweep_with(sc, &tiny(), &seeds, 1, true);
    // Cells are point-major, seed-minor: [0] = calm/seed0, [4] = storm/seed0.
    assert_ne!(
        shared.cells[0].figure.to_json(),
        shared.cells[4].figure.to_json(),
        "calm and storm dynamics must produce different figures"
    );
}

#[test]
fn lab_run_fig05ts_produces_a_bandwidth_over_time_series() {
    // The probe-driven scenario must be reachable through the registry (what
    // `lab run fig05ts` executes) and deliver non-empty goodput-over-time
    // series with aligned sampling instants.
    let reg = Registry::standard();
    let mut opts = tiny();
    opts.tick = Some(1.0);
    let fig = reg.get("fig05ts").expect("registered").run(&opts);
    assert_eq!(fig.series.len(), 5);
    assert!(fig.series[0].label.contains("goodput"));
    let n = fig.series[0].points.len();
    assert!(n >= 3, "expected several probe samples, got {n}");
    for s in &fig.series {
        assert_eq!(s.points.len(), n, "series share sampling instants");
    }
    // Some receiver actually made progress in the observation window.
    assert!(fig.series[0].points.iter().any(|&(_, y)| y > 0.0));
}

#[test]
fn lab_run_fig18_and_fig19_are_reachable_through_the_registry() {
    // The shared-bottleneck and cross-traffic scenarios (what `lab run
    // fig18` / `lab run fig19` execute) at smoke scale.
    let reg = Registry::standard();
    let opts = tiny();

    let f18 = reg.get("fig18").expect("registered").run(&opts);
    assert_eq!(f18.series.len(), 3, "single mesh + two concurrent meshes");
    assert!(f18.series[0].label.contains("single mesh"));
    // The quantitative ~x2 slowdown is pinned (at a controlled scale, where
    // slow start and random delays do not dominate) by
    // tests/shared_bottleneck.rs; here every mesh just has to finish.
    for s in &f18.series {
        assert!(!s.points.is_empty(), "{} is empty", s.label);
        assert!(!s.label.contains("unfinished"), "{}", s.label);
    }

    let mut opts = tiny();
    opts.tick = Some(1.0);
    let f19 = reg.get("fig19").expect("registered").run(&opts);
    assert_eq!(f19.series.len(), 4, "goodput mean/p10/p90 + the wave");
    assert!(f19.series[3].label.contains("cross-traffic"));
    assert!(
        f19.series[3].points.iter().any(|&(_, y)| y > 0.0),
        "at least one wave boundary lands inside the run"
    );
    assert!(f19.series[0].points.iter().any(|&(_, y)| y > 0.0));
}

#[test]
fn lab_run_fig20_completes_a_thousand_node_join_only_swarm() {
    // One point of the fig20 scaling trajectory, end to end through the
    // registry: a 1,000-node join-only swarm on the O(n) uniform core must
    // run to AllComplete — every receiver finishes, none are reported
    // unfinished — and stay deterministic per seed.
    let reg = Registry::standard();
    let opts = CommonOpts {
        nodes: Some(1_000),
        file_mb: Some(0.125),
        ..CommonOpts::default()
    };
    let fig = reg.get("fig20").expect("registered").run(&opts);
    // --nodes collapses the trajectory to one CDF plus the events series.
    assert_eq!(fig.series.len(), 2);
    let cdf = &fig.series[0];
    assert_eq!(cdf.label, "BulletPrime, N=1000", "no receiver unfinished");
    assert_eq!(cdf.points.len(), 999, "one CDF point per receiver");
    assert!(cdf.points.iter().all(|&(t, _)| t > 0.0));
    assert_eq!(fig.series[1].points[0].0, 1000.0);
    assert!(fig.series[1].points[0].1 > 0.0, "events were counted");

    let again = reg.get("fig20").expect("registered").run(&opts);
    assert_eq!(
        fig.to_json(),
        again.to_json(),
        "fig20 must be deterministic"
    );
}

#[test]
fn thousand_node_swarm_interleaves_probe_and_trace() {
    // The fig20 workload traced at N = 1,000: the probe samples every tick
    // *while* the trace stream records every delivery, and the two
    // observation channels must agree — replaying the per-node goodput from
    // nothing but `block_received` + `probe_tick` records reproduces the
    // live StatsProbe series at swarm scale, dense node ids and all.
    let reg = Registry::standard();
    let fig20 = reg.get("fig20").expect("registered");
    let opts = CommonOpts {
        nodes: Some(1_000),
        file_mb: Some(0.125),
        tick: Some(5.0),
        ..CommonOpts::default()
    };
    let run = traced_run(fig20, &opts, 1 << 22).expect("fig20 is traceable");
    assert_eq!(run.nodes, 1_000);
    assert_eq!(run.dropped, 0, "the default-sized ring must not overflow");
    assert_eq!(run.recorded, run.report.trace_records);
    assert!(
        run.records
            .iter()
            .any(|r| matches!(r.ev, TraceEvent::ProbeTick)),
        "probe ticks must appear inside the trace stream"
    );
    let series = run.report.timeseries.as_ref().expect("probe installed");
    assert_eq!(series.samples[0].nodes.len(), 1_000);
    let msg = check_replay(&run.records, series, run.nodes).expect("replay must match");
    assert!(msg.contains("1000 nodes"), "{msg}");
    // The trace is ordered: seq is non-decreasing across the whole stream.
    assert!(
        run.records.windows(2).all(|w| w[0].seq <= w[1].seq),
        "records must replay in dispatch order"
    );
}

#[test]
fn overflowing_ring_sink_does_not_affect_the_simulation() {
    // A sink that drops records (here: a 32-record ring under a run emitting
    // thousands) must leave the simulation untouched — tracing is passive
    // observation, and backpressure from a full sink cannot exist. The
    // canonical report (trace_records zeroed) must be byte-identical to the
    // untraced run's.
    let workload = |sink_capacity: Option<usize>| {
        let rng = RngFactory::new(20050410);
        let topo = topology::modelnet_mesh(8, 0.01, &rng);
        let cfg = Config::new(FileSpec::new(512 * 1024, 16 * 1024));
        let mut runner = build_runner(topo, &cfg, &rng);
        if let Some(cap) = sink_capacity {
            runner.set_trace_sink(Box::new(RingSink::new(cap)));
        }
        let report = runner.run(SimDuration::from_secs(3_600));
        let sink = runner.take_trace_sink();
        (report, sink)
    };
    let (untraced, _) = workload(None);
    let (traced, sink) = workload(Some(32));
    let sink = sink.expect("sink was installed");
    assert!(
        sink.dropped() > 0,
        "the tiny ring must actually have overflowed for this test to bite"
    );
    assert_eq!(sink.recorded(), traced.trace_records);
    assert_eq!(
        traced.canonical(),
        untraced.canonical(),
        "a dropping sink perturbed the simulation"
    );
    // The non-canonical reports differ only by the trace-record count.
    assert_ne!(traced.trace_records, untraced.trace_records);
    assert_eq!(untraced.trace_records, 0);
}

#[test]
fn four_thread_lab_serve_fig21_is_byte_identical_to_one_thread() {
    // The open-system acceptance scenario: `lab serve fig21` at smoke scale.
    // Each offered-load cell is one deterministic service simulation, so the
    // merged canonical output must not depend on the worker count — and the
    // top-load cell must be a genuinely open system: many swarms admitted
    // over the shared core, overlapping in time.
    let opts = CommonOpts {
        nodes: Some(16),
        file_mb: Some(0.25),
        time_limit: 900.0,
        ..CommonOpts::default()
    };
    let serial = run_serve("fig21", &opts, 1).expect("fig21 is a service scenario");
    let parallel = run_serve("fig21", &opts, 4).expect("fig21 is a service scenario");
    assert_eq!(serial.cells.len(), experiments::FIG21_LOADS.len());
    let a = serial.canonical();
    let b = parallel.canonical();
    assert!(!a.is_empty());
    assert_eq!(a, b, "thread count leaked into the serve output");

    let top = &serial.cells.last().expect("cells are non-empty").report;
    assert!(
        top.admitted >= 8,
        "the top load must admit at least 8 swarms: {top:?}"
    );
    assert!(
        top.max_concurrent >= 2,
        "swarms must overlap on the shared core: {top:?}"
    );
    assert!(
        top.completed > 0 && top.sustained_goodput_bps > 0.0,
        "{top:?}"
    );
    // Cells genuinely differ across loads (the sweep is not vacuous).
    assert_ne!(
        serial.cells[0].report.canonical(),
        serial.cells[1].report.canonical(),
        "distinct offered loads must differ"
    );
    // Closed-system scenarios are rejected with a pointer at `lab serve`.
    assert!(run_serve("fig13", &opts, 1).is_err());
}

#[test]
fn lab_serve_fig22_overlaps_the_flash_crowd_with_the_warm_swarm() {
    // `lab serve fig22` at smoke scale: the flash crowd must land while the
    // warm swarm is still in flight (that is the scenario's point), and both
    // cohorts must complete with the flash cohort's latency carrying the
    // join stagger.
    // 8 MB file: at this 16-slot pool the shared core drains ~12 Mbps, so a
    // 4 MB warm transfer would finish in ~20 s — before the flash lands at
    // t = 30 s. Doubling the file keeps the warm swarm in flight past it.
    let opts = CommonOpts {
        nodes: Some(16),
        file_mb: Some(8.0),
        time_limit: 1800.0,
        ..CommonOpts::default()
    };
    let run = run_serve("fig22", &opts, 1).expect("fig22 is a service scenario");
    assert_eq!(run.cells.len(), 1);
    let report = &run.cells[0].report;
    assert_eq!(report.admitted, 2, "{report:?}");
    assert_eq!(report.completed, 2, "{report:?}");
    assert_eq!(
        report.max_concurrent, 2,
        "the flash crowd must overlap the warm swarm: {report:?}"
    );
    // Cohorts are reported in reap order; the warm swarm — admitted first —
    // always carries tag 1.
    let warm = report.cohorts.iter().find(|c| c.cohort == 1).unwrap();
    let flash = report.cohorts.iter().find(|c| c.cohort != 1).unwrap();
    assert_eq!(warm.arrival_secs, 0.0);
    assert!(flash.arrival_secs > 0.0);
    assert!(
        flash.p90_secs > warm.p90_secs,
        "the flash cohort's tail carries the join stagger: {report:?}"
    );
}

#[test]
fn default_sweeps_of_the_overall_comparisons_scale_swarm_size() {
    let reg = Registry::standard();
    for name in ["fig04", "fig05"] {
        let sweep = &reg.get(name).unwrap().sweep;
        assert_eq!(sweep.points.len(), 3, "{name}");
        let nodes: Vec<usize> = sweep.points.iter().filter_map(|p| p.nodes).collect();
        assert_eq!(nodes, vec![20, 40, 60], "{name}");
    }
}
