//! End-to-end Shotgun test: build a real update archive from two software
//! images, disseminate a file of exactly that size with Bullet′ over a
//! wide-area topology, and verify the upgraded clients and the Fig 15
//! ordering against parallel rsync.

use bullet_repro::netsim::mbps;
use bullet_repro::shotgun::{
    parallel_rsync_times, planetlab_client_bandwidths, simulate_shotgun, FileSet, RsyncModelParams,
    UpdateArchive,
};
use rand::{Rng, SeedableRng};

fn image(seed: u64, files: usize, kb: usize) -> FileSet {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..files)
        .map(|i| {
            let data: Vec<u8> = (0..kb * 1024).map(|_| rng.gen()).collect();
            (format!("opt/app/file{i}"), data)
        })
        .collect()
}

#[test]
fn archive_built_from_real_images_upgrades_every_client() {
    let v1 = image(1, 8, 64);
    let mut v2 = v1.clone();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    for data in v2.values_mut() {
        let at = rng.gen_range(0..data.len() - 2048);
        for b in &mut data[at..at + 2048] {
            *b = rng.gen();
        }
    }
    v2.insert("opt/app/extra".into(), vec![9u8; 32 * 1024]);

    let archive = UpdateArchive::build(&v1, &v2, 7, 2048);
    let wire = archive.encode();
    assert!(
        wire.len() < v2.values().map(Vec::len).sum::<usize>() / 4,
        "the delta archive should be far smaller than the image"
    );

    // Every "client" starts from v1 at version 6 and must end bit-identical.
    for _client in 0..5 {
        let decoded = UpdateArchive::decode(&wire).expect("decodable");
        let mut state = v1.clone();
        assert!(decoded.apply(&mut state, 6).expect("applies"));
        assert_eq!(state, v2);
        // Re-applying the same version is a no-op.
        assert!(!decoded.apply(&mut state, 7).expect("idempotent"));
        assert_eq!(state, v2);
    }
}

#[test]
fn shotgun_dissemination_beats_parallel_rsync_at_testbed_scale() {
    let nodes = 31;
    let update_bytes = 6 * 1024 * 1024u64;
    let seed = 11;
    let params = RsyncModelParams::default();

    let shotgun = simulate_shotgun(nodes, update_bytes, 64, params.client_replay, seed);
    assert_eq!(shotgun.download_only.len(), nodes - 1);
    let slowest = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
    let shotgun_total = slowest(&shotgun.download_plus_update);

    let clients = planetlab_client_bandwidths(nodes, seed);
    for parallelism in [2usize, 8] {
        let rsync = parallel_rsync_times(&clients, parallelism, update_bytes, &params);
        assert!(
            shotgun_total < slowest(&rsync),
            "Shotgun ({shotgun_total:.0}s) should beat {parallelism}-way rsync ({:.0}s)",
            slowest(&rsync)
        );
    }
}

#[test]
fn shotgun_replay_cost_uses_the_configured_disk_rate() {
    let nodes = 11;
    let update = 2 * 1024 * 1024u64;
    let fast_disk = simulate_shotgun(nodes, update, 64, mbps(100.0), 3);
    let slow_disk = simulate_shotgun(nodes, update, 64, mbps(0.8), 3);
    // Download times are identical (same seed); only the replay differs.
    assert_eq!(fast_disk.download_only, slow_disk.download_only);
    let gap_fast = fast_disk.download_plus_update[0] - fast_disk.download_only[0];
    let gap_slow = slow_disk.download_plus_update[0] - slow_disk.download_only[0];
    assert!(gap_slow > gap_fast * 10.0);
}
