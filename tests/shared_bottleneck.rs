//! Acceptance tests for the global max-min fair fluid model: traffic from
//! independent overlay meshes crossing the same core link must contend
//! there, and the contention must be fair.
//!
//! The per-path TCP-equation model of earlier revisions priced every core
//! path independently — two meshes crossing the same lossy 2 Mbps core link
//! did not contend at all. These tests pin the headline behaviour of the
//! fluid model at both altitudes: a deterministic flood workload (exact
//! halving) and full Bullet′ meshes (approximate halving end to end).

use bullet_repro::bullet_bench::run_concurrent_meshes;
use bullet_repro::bullet_prime::Config;
use bullet_repro::desim::{RngFactory, SimDuration};
use bullet_repro::dissem_codec::{BlockBitmap, BlockId, FileSpec};
use bullet_repro::netsim::units::mbps;
use bullet_repro::netsim::{
    topology, BlockReceipt, Ctx, Network, NodeId, Protocol, Runner, StopReason, WireSize,
};

/// A minimal "mesh": one source floods a file to its receivers directly,
/// keeping a fixed window queued per receiver. Deterministic and fluid-rate
/// bound, so the shared-bottleneck arithmetic is exact.
struct Flood {
    id: NodeId,
    source: NodeId,
    receivers: Vec<NodeId>,
    spec: FileSpec,
    window: usize,
    have: BlockBitmap,
    next_to_send: Vec<u32>,
}

#[derive(Debug)]
enum NoMsg {}

impl WireSize for NoMsg {
    fn wire_size(&self) -> usize {
        0
    }
}

impl Flood {
    fn new(id: NodeId, source: NodeId, receivers: Vec<NodeId>, spec: FileSpec) -> Self {
        let have = if id == source {
            BlockBitmap::full(spec.num_blocks())
        } else {
            BlockBitmap::new(spec.num_blocks())
        };
        let n = receivers.len();
        Flood {
            id,
            source,
            receivers,
            spec,
            window: 4,
            have,
            next_to_send: vec![0; n],
        }
    }

    fn fill_pipe(&mut self, ctx: &mut Ctx<'_, Self>, slot: usize) {
        let to = self.receivers[slot];
        let mut queued_now = 0usize;
        while ctx.pending_to(to) + queued_now < self.window
            && self.next_to_send[slot] < self.spec.num_blocks()
        {
            let b = BlockId(self.next_to_send[slot]);
            ctx.queue_block(to, b, u64::from(self.spec.block_size(b)));
            self.next_to_send[slot] += 1;
            queued_now += 1;
        }
    }
}

impl Protocol for Flood {
    type Msg = NoMsg;
    type Timer = ();

    fn on_init(&mut self, ctx: &mut Ctx<'_, Self>) {
        if self.id == self.source {
            for slot in 0..self.receivers.len() {
                self.fill_pipe(ctx, slot);
            }
        }
    }

    fn on_control(&mut self, _ctx: &mut Ctx<'_, Self>, _from: NodeId, _msg: NoMsg) {}

    fn on_block_received(&mut self, _ctx: &mut Ctx<'_, Self>, _from: NodeId, r: BlockReceipt) {
        self.have.insert(r.block);
    }

    fn on_block_sent(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        to: NodeId,
        _block: bullet_repro::dissem_codec::BlockId,
    ) {
        if self.id == self.source {
            if let Some(slot) = self.receivers.iter().position(|&r| r == to) {
                self.fill_pipe(ctx, slot);
            }
        }
    }

    fn is_complete(&self) -> bool {
        self.have.is_full()
    }
}

/// Runs `groups` flood meshes (each: 1 source + `receivers` receivers) over
/// one shared 2 Mbps core and returns the slowest completion time.
fn flood_over_shared_core(groups: usize, receivers: usize, file_kb: u64) -> f64 {
    let per_mesh = 1 + receivers;
    let n = groups * per_mesh;
    let rng = RngFactory::new(7);
    let topo = topology::shared_core_mesh(n, mbps(2.0), 0.0, &rng);
    let spec = FileSpec::new(file_kb * 1024, 16 * 1024);
    let nodes: Vec<Flood> = (0..n as u32)
        .map(|i| {
            let group = i as usize / per_mesh;
            let base = (group * per_mesh) as u32;
            let members: Vec<NodeId> = (base + 1..base + per_mesh as u32).map(NodeId).collect();
            Flood::new(NodeId(i), NodeId(base), members, spec)
        })
        .collect();
    let mut runner = Runner::new(Network::new(topo), nodes, &rng);
    for g in 0..groups {
        runner.exempt_from_completion(NodeId((g * per_mesh) as u32));
    }
    let report = runner.run(SimDuration::from_secs(100_000));
    assert_eq!(report.reason, StopReason::AllComplete);
    report
        .completion_secs
        .iter()
        .flatten()
        .copied()
        .fold(0.0, f64::max)
}

#[test]
fn concurrent_meshes_share_core_bottleneck() {
    // One mesh over the shared 2 Mbps core link, then two: the fluid model
    // must make every flow contend on the shared link, so the same per-mesh
    // workload takes ~twice as long — the ModelNet-style behaviour the
    // per-path model could not express (it would show ~x1).
    let single = flood_over_shared_core(1, 3, 512);
    let dual = flood_over_shared_core(2, 3, 512);
    let ratio = dual / single;
    assert!(
        (1.7..=2.3).contains(&ratio),
        "two meshes over one core link must each converge to ~half the \
         single-mesh rate (single {single:.1}s, dual {dual:.1}s, x{ratio:.2})"
    );
    // Sanity: the single mesh is itself core-bound, not access-bound — the
    // aggregate rate approaches the 2 Mbps (250 KB/s) shared capacity.
    let total_bytes = 3.0 * 512.0 * 1024.0;
    let aggregate = total_bytes / single;
    assert!(
        aggregate > 0.75 * 250_000.0,
        "single mesh should nearly fill the shared core ({aggregate:.0} B/s)"
    );
}

#[test]
fn concurrent_bullet_meshes_contend_end_to_end() {
    // The same comparison through the full stack: real Bullet′ meshes built
    // by `build_group_runner`. The protocol layer adds control traffic and
    // adaptivity noise, so the tolerance is wider than the flood check's,
    // but concurrency must still cost roughly a factor of two.
    let rng = RngFactory::new(20050410);
    let file = FileSpec::new(512 * 1024, 16 * 1024);
    let cfg = Config::new(file);
    let limit = SimDuration::from_secs(50_000);

    let topo = topology::shared_core_mesh(6, mbps(2.0), 0.0, &rng);
    let single = run_concurrent_meshes(topo, &cfg, &rng, &[6], limit);
    assert_eq!(single.len(), 1);
    assert_eq!(single[0].unfinished, 0, "single mesh completes");
    let single_slowest = single[0].times.iter().copied().fold(0.0, f64::max);

    let topo = topology::shared_core_mesh(12, mbps(2.0), 0.0, &rng);
    let dual = run_concurrent_meshes(topo, &cfg, &rng, &[6, 6], limit);
    assert_eq!(dual.len(), 2);
    for (i, run) in dual.iter().enumerate() {
        assert_eq!(run.unfinished, 0, "mesh {i} completes");
        assert_eq!(run.times.len(), 5, "mesh {i} has five receivers");
        let slowest = run.times.iter().copied().fold(0.0, f64::max);
        let ratio = slowest / single_slowest;
        assert!(
            ratio > 1.3,
            "mesh {i} must pay for the shared bottleneck \
             (single {single_slowest:.1}s, concurrent {slowest:.1}s, x{ratio:.2})"
        );
        assert!(
            ratio < 3.5,
            "mesh {i} should not collapse beyond fair sharing \
             (single {single_slowest:.1}s, concurrent {slowest:.1}s, x{ratio:.2})"
        );
    }
}
