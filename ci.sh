#!/usr/bin/env sh
# CI gate for bullet-repro. Mirrors the tier-1 verify from ROADMAP.md plus
# lint, smoke and perf-trajectory gates. Run from the repository root: ./ci.sh
set -eu

# Formatting gate (cheap, so it runs first). The one-time whole-tree
# reformat landed with the Protocol API v2 PR; from here on drift fails CI.
echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release (all targets)"
cargo build --release --all-targets

echo "==> cargo test -q (workspace unit + integration suites)"
cargo test -q

# Documented snippets must compile forever: every rustdoc example in every
# workspace member (vendor shims included) runs as a test. `cargo test -q`
# above already covers the default members; the explicit --doc --workspace
# pass gives the gate a name and catches members outside default-members.
echo "==> cargo test --doc --workspace"
cargo test --doc --workspace -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

# Documentation gate for the first-party crates (vendor/ shims are exempt,
# like every other lint): intra-doc links and rustdoc warnings stay clean.
echo "==> cargo doc --no-deps -D warnings (first-party crates)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p desim -p netsim -p overlay -p dissem-codec -p shotgun \
    -p bullet-prime -p baselines -p bullet-bench -p bullet-lab -p bullet-repro

# The figure harness must stay runnable end to end at tiny scale. These tests
# are part of the plain suite already (none are #[ignore]d — keep it that
# way); running the file alone gives CI a named, attributable gate.
echo "==> figure smoke gate (tests/figures_smoke.rs)"
cargo test -q --test figures_smoke

# Perf trajectory: a fixed-seed, dynamics-heavy Figure-5-style run. The JSON
# records events-processed (a deterministic scheduler-efficiency proxy), the
# heap-allocation count of the run, and the wall-clock seconds of the machine
# that last ran CI. Events are GATED (a >10% increase fails CI, so scheduler
# or network-model regressions cannot land silently); wall-clock is PRINTED
# only — it is machine-dependent, but committing it leaves future perf PRs a
# real time trajectory to compare deltas against, not just event counts.
echo "==> perf record + regression gate (BENCH_events.json)"
# Baseline = the *committed* record, so re-running ci.sh after a failure does
# not silently compare the regressed value against itself. Fall back to the
# working-tree file outside a git checkout.
committed=$(git show HEAD:BENCH_events.json 2>/dev/null || cat BENCH_events.json 2>/dev/null || true)
# Every field is read optional-with-warning: a baseline written before a
# field existed (e.g. run_allocs/wall_clock_secs predate the Protocol API v2
# record) must never wedge CI — re-baselining in the same commit is routine.
prev_events=$(printf '%s' "$committed" \
    | grep -o '"events_processed": *[0-9]*' | grep -o '[0-9]*$' || true)
prev_wall=$(printf '%s' "$committed" \
    | grep -o '"wall_clock_secs": *[0-9.]*' | grep -o '[0-9.]*$' || true)
prev_allocs=$(printf '%s' "$committed" \
    | grep -o '"run_allocs": *[0-9]*' | grep -o '[0-9]*$' || true)
./target/release/bench_events --out BENCH_events.json
new_events=$(grep -o '"events_processed": *[0-9]*' BENCH_events.json | grep -o '[0-9]*$')
new_wall=$(grep -o '"wall_clock_secs": *[0-9.]*' BENCH_events.json | grep -o '[0-9.]*$')
new_allocs=$(grep -o '"run_allocs": *[0-9]*' BENCH_events.json | grep -o '[0-9]*$' || true)
if [ -n "$prev_wall" ] && [ -n "$new_wall" ]; then
    awk -v prev="$prev_wall" -v cur="$new_wall" 'BEGIN {
        printf "wall-clock %.3fs -> %.3fs (%+.1f%%, informational only)\n", prev, cur, (cur - prev) / prev * 100
    }'
else
    echo "WARN: wall_clock_secs missing from the committed baseline (predates the field?); skipping comparison (now ${new_wall:-unrecorded}s)"
fi
if [ -n "$prev_allocs" ] && [ -n "$new_allocs" ]; then
    awk -v prev="$prev_allocs" -v cur="$new_allocs" 'BEGIN {
        printf "run-allocs %d -> %d (%+.1f%%, informational only)\n", prev, cur, (cur - prev) / prev * 100
    }'
else
    echo "WARN: run_allocs missing from the committed baseline (predates the field?); skipping comparison (now ${new_allocs:-unrecorded})"
fi
if [ -n "$prev_events" ]; then
    awk -v prev="$prev_events" -v cur="$new_events" 'BEGIN {
        if (cur > prev * 1.10) {
            printf "FAIL: events-processed regressed %d -> %d (more than 10%%)\n", prev, cur
            exit 1
        }
        printf "events-processed %d -> %d (within the 10%% gate)\n", prev, cur
    }'
else
    echo "WARN: no committed BENCH_events.json baseline; recorded $new_events without gating"
fi

# Parallel-sweep trajectory: `lab bench` runs the same fig05 sweep at 1 and 4
# worker threads, *asserts* the two outputs are byte-identical (the
# determinism-under-parallelism guarantee), and records wall-clock per thread
# count in BENCH_sweep.json.
echo "==> sweep record (BENCH_sweep.json)"
./target/release/lab bench fig05 --threads 1,4 --seed-count 2 --mb 2 \
    --time-limit 3600 --out BENCH_sweep.json

echo "==> CI green"
