#!/usr/bin/env sh
# CI gate for bullet-repro. Mirrors the tier-1 verify from ROADMAP.md plus
# lint, smoke and perf-trajectory gates. Run from the repository root: ./ci.sh
set -eu

# Formatting gate (cheap, so it runs first). The one-time whole-tree
# reformat landed with the Protocol API v2 PR; from here on drift fails CI.
echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release (all targets)"
cargo build --release --all-targets

echo "==> cargo test -q (workspace unit + integration suites)"
cargo test -q

# Documented snippets must compile forever: every rustdoc example in every
# workspace member (vendor shims included) runs as a test. `cargo test -q`
# above already covers the default members; the explicit --doc --workspace
# pass gives the gate a name and catches members outside default-members.
echo "==> cargo test --doc --workspace"
cargo test --doc --workspace -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

# Documentation gate for the first-party crates (vendor/ shims are exempt,
# like every other lint): intra-doc links and rustdoc warnings stay clean.
echo "==> cargo doc --no-deps -D warnings (first-party crates)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p desim -p netsim -p overlay -p dissem-codec -p shotgun \
    -p bullet-prime -p baselines -p bullet-bench -p bullet-lab -p bullet-repro

# The figure harness must stay runnable end to end at tiny scale. These tests
# are part of the plain suite already (none are #[ignore]d — keep it that
# way); running the file alone gives CI a named, attributable gate.
echo "==> figure smoke gate (tests/figures_smoke.rs)"
cargo test -q --test figures_smoke

# Perf trajectory: a fixed-seed, dynamics-heavy Figure-5-style run. The JSON
# records events-processed (a deterministic scheduler-efficiency proxy), the
# heap-allocation count of the run, and the wall-clock seconds of the machine
# that last ran CI. Events are GATED (a >10% increase fails CI, so scheduler
# or network-model regressions cannot land silently). Wall-clock is also
# GATED, absolutely: the heap-ordered solver brought the run to ~0.55s, so
# anything above 0.72s (the old regressed 1.05s minus a generous margin for
# machine noise) fails CI and 0.60–0.72s warns. The relative delta against
# the committed baseline stays informational — it compares different
# machines.
echo "==> perf record + regression gate (BENCH_events.json)"
# Baseline = the *committed* record, so re-running ci.sh after a failure does
# not silently compare the regressed value against itself. Fall back to the
# working-tree file outside a git checkout.
committed=$(git show HEAD:BENCH_events.json 2>/dev/null || cat BENCH_events.json 2>/dev/null || true)
# Every field is read optional-with-warning: a baseline written before a
# field existed (e.g. run_allocs/wall_clock_secs predate the Protocol API v2
# record) must never wedge CI — re-baselining in the same commit is routine.
prev_events=$(printf '%s' "$committed" \
    | grep -o '"events_processed": *[0-9]*' | grep -o '[0-9]*$' || true)
prev_wall=$(printf '%s' "$committed" \
    | grep -o '"wall_clock_secs": *[0-9.]*' | grep -o '[0-9.]*$' || true)
prev_allocs=$(printf '%s' "$committed" \
    | grep -o '"run_allocs": *[0-9]*' | grep -o '[0-9]*$' || true)
./target/release/bench_events --out BENCH_events.json
new_events=$(grep -o '"events_processed": *[0-9]*' BENCH_events.json | grep -o '[0-9]*$')
new_wall=$(grep -o '"wall_clock_secs": *[0-9.]*' BENCH_events.json | grep -o '[0-9.]*$')
new_allocs=$(grep -o '"run_allocs": *[0-9]*' BENCH_events.json | grep -o '[0-9]*$' || true)
if [ -n "$prev_wall" ] && [ -n "$new_wall" ]; then
    awk -v prev="$prev_wall" -v cur="$new_wall" 'BEGIN {
        printf "wall-clock %.3fs -> %.3fs (%+.1f%%, cross-machine delta is informational)\n", prev, cur, (cur - prev) / prev * 100
    }'
else
    echo "WARN: wall_clock_secs missing from the committed baseline (predates the field?); skipping comparison (now ${new_wall:-unrecorded}s)"
fi
awk -v cur="$new_wall" 'BEGIN {
    if (cur > 0.72) {
        printf "FAIL: bench_events wall clock %.3fs exceeds the 0.72s ceiling\n", cur
        exit 1
    }
    if (cur > 0.60) {
        printf "WARN: bench_events wall clock %.3fs above the 0.6s target (ceiling 0.72s)\n", cur
    } else {
        printf "bench_events wall clock %.3fs within the 0.6s target\n", cur
    }
}'
if [ -n "$prev_allocs" ] && [ -n "$new_allocs" ]; then
    awk -v prev="$prev_allocs" -v cur="$new_allocs" 'BEGIN {
        printf "run-allocs %d -> %d (%+.1f%%, informational only)\n", prev, cur, (cur - prev) / prev * 100
    }'
else
    echo "WARN: run_allocs missing from the committed baseline (predates the field?); skipping comparison (now ${new_allocs:-unrecorded})"
fi
if [ -n "$prev_events" ]; then
    awk -v prev="$prev_events" -v cur="$new_events" 'BEGIN {
        if (cur > prev * 1.10) {
            printf "FAIL: events-processed regressed %d -> %d (more than 10%%)\n", prev, cur
            exit 1
        }
        printf "events-processed %d -> %d (within the 10%% gate)\n", prev, cur
    }'
else
    echo "WARN: no committed BENCH_events.json baseline; recorded $new_events without gating"
fi

# Observability contract (docs/OBSERVABILITY.md): bench_events reruns the
# same fixed-seed workload fully instrumented (counting trace sink +
# profiler) and records the comparison under "trace". Two hard gates:
# (a) the canonical report of the traced run is byte-identical to the
# untraced one — observation must not perturb the simulation — and (b) the
# traced wall-clock stays within 1.5x of untraced. Both values come from the
# record just written, so these gates are machine-local and need no baseline.
echo "==> observability gate (trace identity + overhead, BENCH_events.json)"
canon_ok=$(grep -o '"canonical_identical": *[a-z]*' BENCH_events.json \
    | grep -o '[a-z]*$' || true)
overhead=$(grep -o '"trace_overhead_ratio": *[0-9.]*' BENCH_events.json \
    | grep -o '[0-9.]*$' || true)
if [ "$canon_ok" != "true" ]; then
    echo "FAIL: traced run's canonical report differs from the untraced run (canonical_identical=${canon_ok:-missing})"
    exit 1
fi
if [ -z "$overhead" ]; then
    echo "FAIL: trace_overhead_ratio missing from BENCH_events.json"
    exit 1
fi
awk -v r="$overhead" 'BEGIN {
    if (r > 1.5) {
        printf "FAIL: traced run %.2fx slower than untraced (ceiling 1.5x)\n", r
        exit 1
    }
    printf "trace identity holds; overhead %.2fx (ceiling 1.5x)\n", r
}'

# Scale trajectory: the fig20 workload (join-only Bullet' swarm on the O(n)
# uniform core) at N = 1000 / 5000 / 10000. Every point records events
# processed, events/sec, wall-clock and the counting-allocator live-heap
# high-water mark (the portable peak-RSS stand-in — no /proc dependency).
# The N=1000 events/sec is GATED: a >10% drop against the committed baseline
# fails CI. The larger Ns stay informational so a single noisy 30 s run
# cannot wedge CI, but they are committed so the trajectory to 10^4 nodes is
# visible. Every point must still run to AllComplete.
echo "==> scale record + regression gate (BENCH_scale.json)"
committed_scale=$(git show HEAD:BENCH_scale.json 2>/dev/null || cat BENCH_scale.json 2>/dev/null || true)
scale_eps() {
    # events_per_sec of the point whose swarm size is $1.
    printf '%s' "$2" | awk -v n="$1" '
        $0 ~ "\"nodes\": " n ",$" { f = 1 }
        f && /"events_per_sec":/ { gsub(/[^0-9.]/, "", $2); print $2; exit }
    '
}
prev_eps=$(scale_eps 1000 "$committed_scale")
./target/release/bench_scale --out BENCH_scale.json
new_eps=$(scale_eps 1000 "$(cat BENCH_scale.json)")
if grep '"stop_reason"' BENCH_scale.json | grep -qv AllComplete; then
    echo "FAIL: a BENCH_scale point did not run to AllComplete"
    grep '"stop_reason"' BENCH_scale.json
    exit 1
fi
if [ -n "$prev_eps" ] && [ -n "$new_eps" ]; then
    awk -v prev="$prev_eps" -v cur="$new_eps" 'BEGIN {
        if (cur < prev * 0.90) {
            printf "FAIL: N=1000 events/sec regressed %.0f -> %.0f (more than 10%%; if this is a machine change, re-baseline deliberately)\n", prev, cur
            exit 1
        }
        printf "N=1000 events/sec %.0f -> %.0f (within the 10%% gate)\n", prev, cur
    }'
else
    echo "WARN: no committed BENCH_scale.json baseline; recorded ${new_eps:-nothing} events/sec at N=1000 without gating"
fi

# Open-system service trajectory: the reduced fixed-seed fig21 offered-load
# sweep (Poisson swarm arrivals over a shared core, netsim::run_service).
# Every point's counters and percentiles are deterministic; the sustained
# goodput at the TOP offered load is GATED — a >10% drop against the
# committed baseline fails CI, so admission-path or steady-state regressions
# cannot land silently. The top-load point is the last one in the record, so
# the extraction takes the last sustained_goodput_bps line.
echo "==> service record + regression gate (BENCH_service.json)"
committed_service=$(git show HEAD:BENCH_service.json 2>/dev/null || cat BENCH_service.json 2>/dev/null || true)
prev_goodput=$(printf '%s' "$committed_service" \
    | grep -o '"sustained_goodput_bps": *[0-9.]*' | grep -o '[0-9.]*$' | tail -n1 || true)
./target/release/bench_service --out BENCH_service.json
new_goodput=$(grep -o '"sustained_goodput_bps": *[0-9.]*' BENCH_service.json \
    | grep -o '[0-9.]*$' | tail -n1)
if [ -n "$prev_goodput" ] && [ -n "$new_goodput" ]; then
    awk -v prev="$prev_goodput" -v cur="$new_goodput" 'BEGIN {
        if (cur < prev * 0.90) {
            printf "FAIL: top-load sustained goodput regressed %.0f -> %.0f bps (more than 10%%)\n", prev, cur
            exit 1
        }
        printf "top-load sustained goodput %.0f -> %.0f bps (within the 10%% gate)\n", prev, cur
    }'
else
    echo "WARN: no committed BENCH_service.json baseline; recorded ${new_goodput:-nothing} bps without gating"
fi

# Parallel-sweep trajectory: `lab bench` runs the same fig05 sweep at 1 and 4
# worker threads, *asserts* the two canonical renderings are byte-identical
# (the determinism-under-parallelism guarantee; per-cell wall-clock telemetry
# is schedule-dependent and excluded), and records wall-clock per thread
# count AND per cell in BENCH_sweep.json. `--snapshot fig05w` additionally
# runs the warm-up-split scenario with prefix sharing on and off; the bench
# itself fails hard on any canonical divergence between forked and fresh
# cells.
echo "==> sweep record (BENCH_sweep.json)"
./target/release/lab bench fig05 --threads 1,4 --seed-count 2 --mb 2 \
    --time-limit 3600 --snapshot fig05w --out BENCH_sweep.json

# Snapshot gate: the record must attest that forked-vs-fresh matched and
# that prefix sharing actually avoided some warm-up simulation time.
grep -q '"canonical_matches_fresh": *true' BENCH_sweep.json || {
    echo "FAIL: BENCH_sweep.json does not attest canonical_matches_fresh=true for the snapshot run"
    exit 1
}
saved=$(grep -o '"warmup_secs_saved": *[0-9.]*' BENCH_sweep.json \
    | grep -o '[0-9.]*$' | tail -n1)
awk -v s="${saved:-0}" 'BEGIN {
    if (s <= 0) {
        printf "FAIL: warm-up sharing saved no time (warmup_secs_saved=%s)\n", s
        exit 1
    }
    printf "warm-up sharing saved %.3fs of warm-up simulation with canonical output unchanged\n", s
}'

# Scaling gate: with the longest-first lock-free executor, 4 workers must
# beat 1 worker by >= 1.5x (target 2x) — but only where the host can
# physically run 4 workers. On narrower hosts the ratio is recorded as
# informational; committing BENCH_sweep.json keeps the trajectory visible
# either way.
sweep_wall() {
    # First run-level wall_clock_secs after the matching "threads" line (the
    # per-cell timings come later inside the cells array).
    awk -v t="$1" '
        /"threads":/ { cur = $2 + 0 }
        /"wall_clock_secs":/ && cur == t && !seen[cur]++ {
            gsub(/[",]/, "", $2); print $2; exit
        }
    ' BENCH_sweep.json
}
wall_t1=$(sweep_wall 1 || true)
wall_t4=$(sweep_wall 4 || true)
cores=$( (nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1) | head -n1)
if [ -n "$wall_t1" ] && [ -n "$wall_t4" ]; then
    if [ "$cores" -ge 4 ]; then
        awk -v w1="$wall_t1" -v w4="$wall_t4" 'BEGIN {
            s = w1 / w4
            if (s < 1.5) {
                printf "FAIL: 4-thread sweep only %.2fx faster than 1 thread (need >= 1.5x on a %d-core-capable host)\n", s, 4
                exit 1
            }
            if (s < 2.0) {
                printf "WARN: 4-thread sweep %.2fx faster than 1 thread (target >= 2x)\n", s
            } else {
                printf "sweep scaling %.2fx (1 thread %.3fs -> 4 threads %.3fs)\n", s, w1, w4
            }
        }'
    else
        awk -v w1="$wall_t1" -v w4="$wall_t4" -v c="$cores" 'BEGIN {
            printf "sweep scaling %.2fx on a %d-core host (1 thread %.3fs -> 4 threads %.3fs; gate needs >= 4 cores)\n", w1 / w4, c, w1, w4
        }'
    fi
else
    echo "WARN: could not read per-thread wall clocks from BENCH_sweep.json; scaling not checked"
fi

echo "==> CI green"
