#!/usr/bin/env sh
# CI gate for bullet-repro. Mirrors the tier-1 verify from ROADMAP.md plus
# lint and smoke gates. Run from the repository root: ./ci.sh
set -eu

echo "==> cargo build --release (all targets)"
cargo build --release --all-targets

echo "==> cargo test -q (workspace unit + integration suites)"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

# The figure harness must stay runnable end to end at tiny scale. These tests
# are part of the plain suite already (none are #[ignore]d — keep it that
# way); running the file alone gives CI a named, attributable gate.
echo "==> figure smoke gate (tests/figures_smoke.rs)"
cargo test -q --test figures_smoke

echo "==> CI green"
