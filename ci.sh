#!/usr/bin/env sh
# CI gate for bullet-repro. Mirrors the tier-1 verify from ROADMAP.md plus
# lint, smoke and perf-trajectory gates. Run from the repository root: ./ci.sh
set -eu

echo "==> cargo build --release (all targets)"
cargo build --release --all-targets

echo "==> cargo test -q (workspace unit + integration suites)"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

# Documentation gate for the first-party crates (vendor/ shims are exempt,
# like every other lint): intra-doc links and rustdoc warnings stay clean.
# (A `cargo fmt --check` gate is deliberately NOT enabled yet: the seed tree
# predates rustfmt and a whole-tree reformat belongs in its own PR.)
echo "==> cargo doc --no-deps -D warnings (first-party crates)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p desim -p netsim -p overlay -p dissem-codec -p shotgun \
    -p bullet-prime -p baselines -p bullet-bench -p bullet-repro

# The figure harness must stay runnable end to end at tiny scale. These tests
# are part of the plain suite already (none are #[ignore]d — keep it that
# way); running the file alone gives CI a named, attributable gate.
echo "==> figure smoke gate (tests/figures_smoke.rs)"
cargo test -q --test figures_smoke

# Perf trajectory: a fixed-seed, dynamics-heavy Figure-5-style run. The JSON
# records events-processed (deterministic scheduler-efficiency proxy) and
# wall-clock; compare against the previous PR's BENCH_events.json before
# merging scheduler or network-model changes.
echo "==> perf record (BENCH_events.json)"
./target/release/bench_events --out BENCH_events.json

echo "==> CI green"
