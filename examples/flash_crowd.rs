//! Flash crowd: the paper's motivating scenario — a popular file appears at a
//! single source and a crowd of receivers all want it at once. This example
//! runs the same crowd through all four systems (Bullet′, Bullet, BitTorrent,
//! SplitStream) on an identical lossy topology and prints the comparison.
//!
//! Run with `cargo run --release --example flash_crowd`.

use bullet_repro::bullet_bench::{run_system, Series, SystemKind};
use bullet_repro::desim::{RngFactory, SimDuration};
use bullet_repro::dissem_codec::FileSpec;
use bullet_repro::netsim::topology;

fn main() {
    let nodes = 30;
    let file = FileSpec::from_mb_kb(8, 16);
    let seed = 42;

    println!(
        "Flash crowd: {} receivers fetching an 8 MiB file (seed {seed})",
        nodes - 1
    );
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10}",
        "system", "p10 (s)", "median", "p90", "slowest"
    );
    for kind in SystemKind::all() {
        let rng = RngFactory::new(seed);
        let topo = topology::modelnet_mesh(nodes, 0.03, &rng);
        let run = run_system(
            kind,
            topo,
            file,
            &rng,
            &Vec::new(),
            SimDuration::from_secs(3600),
        );
        let cdf = Series::cdf(kind.label(), &run.times);
        println!(
            "{:<14} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            kind.label(),
            cdf.quantile(0.10),
            cdf.quantile(0.50),
            cdf.quantile(0.90),
            cdf.max_x()
        );
    }
    println!("(the paper's Figure 4 runs the same comparison at 100 nodes / 100 MB)");
}
