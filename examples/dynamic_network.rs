//! Adaptivity under dynamic network conditions: the same Bullet′ swarm run
//! once on a static lossy network and once with the paper's correlated,
//! cumulative bandwidth-decrease scenario (§4.1), contrasting the adaptive
//! configuration against a statically configured one.
//!
//! Run with `cargo run --release --example dynamic_network`.

use bullet_repro::bullet_bench::{run_bullet_prime_with, Series};
use bullet_repro::bullet_prime::{Config, OutstandingPolicy, PeerSetPolicy};
use bullet_repro::desim::{RngFactory, SimDuration};
use bullet_repro::dissem_codec::FileSpec;
use bullet_repro::netsim::dynamics::correlated_decrease_schedule;
use bullet_repro::netsim::topology;

type ConfigTweak = fn(&mut Config);

fn main() {
    let nodes = 30;
    let file = FileSpec::from_mb_kb(10, 16);
    let seed = 11;
    let limit = SimDuration::from_secs(3600);

    let variants: [(&str, ConfigTweak); 2] = [
        ("adaptive (dynamic peers + dynamic outstanding)", |_cfg| {}),
        ("static (6 peers, 3 outstanding)", |cfg| {
            cfg.peer_policy = PeerSetPolicy::Fixed(6);
            cfg.outstanding_policy = OutstandingPolicy::Fixed(3);
        }),
    ];

    println!(
        "Bullet' under static vs dynamic network conditions ({} receivers)",
        nodes - 1
    );
    println!(
        "{:<50} {:>12} {:>12}",
        "configuration", "static net", "dynamic net"
    );
    for (label, tweak) in variants {
        let mut medians = Vec::new();
        for dynamic in [false, true] {
            let rng = RngFactory::new(seed);
            let topo = topology::modelnet_mesh(nodes, 0.03, &rng);
            let schedule = if dynamic {
                correlated_decrease_schedule(
                    nodes,
                    SimDuration::from_secs(20),
                    SimDuration::from_secs(600),
                    &rng,
                )
            } else {
                Vec::new()
            };
            let mut cfg = Config::new(file);
            tweak(&mut cfg);
            let (run, _) = run_bullet_prime_with(topo, &cfg, &rng, &schedule, limit);
            let cdf = Series::cdf(label, &run.times);
            medians.push(cdf.quantile(0.5));
        }
        println!("{:<50} {:>11.1}s {:>11.1}s", label, medians[0], medians[1]);
    }
    println!("(lower is better; the adaptive configuration should degrade the least)");
}
