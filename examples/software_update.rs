//! Shotgun end-to-end: build an rsync-style update archive from two versions
//! of a software image, verify it upgrades a stale client byte-for-byte, and
//! compare pushing it to a PlanetLab-like testbed with Bullet′ (Shotgun)
//! against N parallel rsync sessions (the paper's Figure 15 scenario).
//!
//! Run with `cargo run --release --example software_update`.

use bullet_repro::shotgun::{
    parallel_rsync_times, planetlab_client_bandwidths, simulate_shotgun, FileSet, RsyncModelParams,
    UpdateArchive,
};
use rand::{Rng, SeedableRng};

fn build_image(seed: u64, files: usize, file_kb: usize) -> FileSet {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..files)
        .map(|i| {
            let data: Vec<u8> = (0..file_kb * 1024).map(|_| rng.gen()).collect();
            (format!("deploy/binary_{i:02}"), data)
        })
        .collect()
}

fn main() {
    // 1. Two versions of a deployed experiment image: v2 rewrites a sizeable
    //    region of half the binaries and ships one new multi-megabyte tool
    //    (roughly the "24 MB of deltas" regime of the paper's Figure 15).
    let v1 = build_image(1, 12, 512);
    let mut v2 = v1.clone();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    for (i, data) in v2.values_mut().enumerate() {
        if i % 2 == 0 {
            let at = rng.gen_range(0..data.len() - 256 * 1024);
            for b in &mut data[at..at + 256 * 1024] {
                *b = rng.gen();
            }
        }
    }
    v2.insert(
        "deploy/new_tool".into(),
        (0..3 * 1024 * 1024).map(|_| rng.gen()).collect(),
    );

    // 2. Build and verify the update archive.
    let archive = UpdateArchive::build(&v1, &v2, 2, 4096);
    let encoded = archive.encode();
    let decoded = UpdateArchive::decode(&encoded).expect("well-formed archive");
    let mut client = v1.clone();
    assert!(decoded.apply(&mut client, 1).expect("apply succeeds"));
    assert_eq!(client, v2, "client image matches v2 after replay");
    let image_bytes: usize = v2.values().map(Vec::len).sum();
    println!(
        "update archive: {} changed files, {} KiB literals, {} KiB on the wire ({}x smaller than the {} KiB image)",
        archive.entries.len(),
        archive.literal_bytes() / 1024,
        encoded.len() / 1024,
        image_bytes / encoded.len().max(1),
        image_bytes / 1024,
    );

    // 3. Push the archive to 40 PlanetLab-like nodes: Shotgun vs parallel rsync.
    let nodes = 41;
    let seed = 5;
    let params = RsyncModelParams::default();
    let shotgun = simulate_shotgun(nodes, encoded.len() as u64, 64, params.client_replay, seed);
    let slowest = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "Shotgun: download only {:.0}s, download+update {:.0}s (slowest of {} nodes)",
        slowest(&shotgun.download_only),
        slowest(&shotgun.download_plus_update),
        nodes - 1
    );
    let clients = planetlab_client_bandwidths(nodes, seed);
    for k in [2usize, 4, 8, 16] {
        let times = parallel_rsync_times(&clients, k, encoded.len() as u64, &params);
        println!("{k:>2} parallel rsync: slowest {:.0}s", slowest(&times));
    }
}
