//! Quickstart: disseminate a file from one source to a small swarm with
//! Bullet′ and print every receiver's download time.
//!
//! Run with `cargo run --release --example quickstart`.

use bullet_repro::bullet_prime::{build_runner, Config};
use bullet_repro::desim::{RngFactory, SimDuration};
use bullet_repro::dissem_codec::FileSpec;
use bullet_repro::netsim::{topology, NodeId};

fn main() {
    // 1. Describe the object: a 10 MiB file split into 16 KiB blocks.
    let file = FileSpec::from_mb_kb(10, 16);

    // 2. Describe the network: 20 hosts in the paper's ModelNet configuration
    //    (6 Mbps access links, 2 Mbps lossy core links, 5–200 ms delays).
    let seed = 7;
    let rng = RngFactory::new(seed);
    let topo = topology::modelnet_mesh(20, 0.03, &rng);

    // 3. Build the Bullet' deployment (node 0 is the source) and run it.
    let cfg = Config::new(file);
    let mut runner = build_runner(topo, &cfg, &rng);
    let report = runner.run(SimDuration::from_secs(3600));

    println!("Bullet' quickstart: 10 MiB to 19 receivers (seed {seed})");
    println!(
        "{:>6} {:>12} {:>9} {:>11}",
        "node", "done (s)", "senders", "dup bytes"
    );
    for i in 1..20u32 {
        let node = runner.node(NodeId(i));
        let m = node.metrics();
        println!(
            "{:>6} {:>12.1} {:>9} {:>11}",
            i,
            m.completed_at.unwrap_or(f64::NAN),
            m.senders_at_completion,
            m.duplicate_bytes
        );
    }
    let times = report.finished_times();
    println!(
        "median {:.1}s, slowest {:.1}s, {} events simulated",
        times[times.len() / 2],
        times.last().copied().unwrap_or(f64::NAN),
        report.events
    );
}
